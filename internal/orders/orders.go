// Package orders extends blitzsplit-style dynamic programming with physical
// properties — the "interesting sort orders" of Selinger et al. that the
// paper's §6.5 flags as an open problem ("we have yet to develop a strategy
// for the general case"). This package develops the classic strategy for
// equi-join attributes:
//
// Table entries are keyed by (relation set, delivered order) instead of just
// the relation set, where an order is "sorted on the attribute of predicate
// e" (or unordered). Two physical operators compete at every join:
//
//   - merge join on a spanning predicate e: each input pays a sort unless it
//     already arrives sorted on e's attribute; the output is sorted on e.
//   - hash join: input orders are irrelevant and the output is unordered.
//
// A sorted intermediate can therefore be worth carrying even when producing
// it costs more — exactly the situation plain blitzsplit cannot express,
// since its table keeps one entry per set. The state space grows from 2^n to
// 2^n × (1 + interesting orders of the set), and the split loop gains a
// factor for the operator/order choices; this quantifies the §6.5 trade-off.
//
// Attribute identity across predicates is supplied by Problem.EdgeAttr
// (e.g. derived from the schema package's equivalence classes): predicates
// with the same attribute id join on the same underlying column, so a sorted
// result carries between them. Without shared attributes a sorted output can
// never be reused (the producing predicate's endpoints are already joined),
// and the order-aware optimum provably coincides with the property-blind one
// — a fact the tests exploit.
package orders

import (
	"errors"
	"fmt"
	"math"

	"blitzsplit/internal/bitset"
	"blitzsplit/internal/joingraph"
	"blitzsplit/internal/plan"
)

// Unordered is the order index meaning "no useful sort order".
const Unordered = 0

// CostParams parameterizes the order-aware cost model, a sort-merge/hash
// pair in the style of the paper's Appendix models.
type CostParams struct {
	// SortFactor scales the n·log n sort term (default 1).
	SortFactor float64
	// MergeFactor scales the linear merge term (default 1).
	MergeFactor float64
	// HashFactor scales the hash join's linear build+probe term. The default
	// 3 mirrors a GRACE hash join's three passes, making merge joins
	// attractive when sort orders can be reused.
	HashFactor float64
}

func (p CostParams) defaults() CostParams {
	if p.SortFactor <= 0 {
		p.SortFactor = 1
	}
	if p.MergeFactor <= 0 {
		p.MergeFactor = 1
	}
	if p.HashFactor <= 0 {
		p.HashFactor = 3
	}
	return p
}

// sortCost is the cost of sorting card tuples.
func (p CostParams) sortCost(card float64) float64 {
	if card <= 1 {
		return p.SortFactor * card
	}
	return p.SortFactor * card * (1 + math.Log(card))
}

// mergeCost is the cost of merging two sorted inputs.
func (p CostParams) mergeCost(l, r float64) float64 {
	return p.MergeFactor * (l + r)
}

// hashCost is the cost of hash-joining two inputs.
func (p CostParams) hashCost(l, r float64) float64 {
	return p.HashFactor * (l + r)
}

// Result is the outcome of an order-aware optimization.
type Result struct {
	// Plan is the optimal tree; join nodes carry Algorithm annotations
	// "mergejoin(e)" / "hashjoin", and explicit sorts appear as
	// "sort(e)"-annotated cost on the join that required them (sorts are
	// enforcer costs, not separate nodes).
	Plan *plan.Node
	// Cost is the total cost including sorts.
	Cost float64
	// States is the number of (set, order) table states populated.
	States int
	// NaiveCost is the optimum when every intermediate is treated as
	// unordered (sorted outputs never reused) — what a property-blind
	// optimizer under the same operator costs would report. Always ≥ Cost.
	NaiveCost float64
}

// Problem is an order-aware optimization input. EdgeAttr assigns each
// predicate (in g.Edges() order) an attribute identity: two predicates with
// the same attribute id join on the same underlying column, so a result
// sorted for one is sorted for the other — the situation where carrying an
// interesting order pays (e.g. a star schema's shared key). A nil EdgeAttr
// gives every predicate its own attribute, in which case sorted outputs are
// never reusable and the order-aware optimum coincides with the naive one.
type Problem struct {
	Cards    []float64
	Graph    *joingraph.Graph
	EdgeAttr []int
}

// Optimize runs the order-aware DP.
func Optimize(p Problem, params CostParams) (*Result, error) {
	cards, g := p.Cards, p.Graph
	n := len(cards)
	if n == 0 {
		return nil, errors.New("orders: no relations")
	}
	if n > bitset.MaxRelations {
		return nil, fmt.Errorf("orders: %d relations exceeds maximum %d", n, bitset.MaxRelations)
	}
	if g == nil {
		return nil, errors.New("orders: a join graph is required (orders come from predicates)")
	}
	if g.N() != n {
		return nil, fmt.Errorf("orders: graph covers %d relations, query has %d", g.N(), n)
	}
	params = params.defaults()
	edges := g.Edges()
	attr := p.EdgeAttr
	if attr == nil {
		attr = make([]int, len(edges))
		for i := range attr {
			attr[i] = i
		}
	}
	if len(attr) != len(edges) {
		return nil, fmt.Errorf("orders: EdgeAttr has %d entries for %d edges", len(attr), len(edges))
	}
	numAttrs := 0
	for _, a := range attr {
		if a < 0 {
			return nil, fmt.Errorf("orders: negative attribute id %d", a)
		}
		if a+1 > numAttrs {
			numAttrs = a + 1
		}
	}
	numOrders := 1 + numAttrs // Unordered + one per attribute

	size := 1 << uint(n)
	// cost[s][o]: cheapest way to produce set s sorted per order o (o=0:
	// unordered ≡ cheapest regardless of order, with no credit for sortedness).
	costT := make([][]float64, size)
	type choice struct {
		lhs              bitset.Set
		lhsOrder, rhsOrd int
		alg              string
		edge             int // merge edge, -1 for hash
	}
	choiceT := make([][]choice, size)
	card := make([]float64, size)

	inf := math.Inf(1)
	newRow := func() []float64 {
		row := make([]float64, numOrders)
		for i := range row {
			row[i] = inf
		}
		return row
	}

	for i := 0; i < n; i++ {
		s := bitset.Single(i)
		card[s] = cards[i]
		costT[s] = newRow()
		choiceT[s] = make([]choice, numOrders)
		// A base relation arrives unordered for free; producing it sorted on
		// any incident attribute costs one sort.
		costT[s][Unordered] = 0
		for ei, e := range edges {
			if e.A == i || e.B == i {
				o := 1 + attr[ei]
				if params.sortCost(cards[i]) < costT[s][o] {
					costT[s][o] = params.sortCost(cards[i])
				}
			}
		}
	}

	states := n
	full := bitset.Full(n)
	for s := bitset.Set(3); s <= full; s++ {
		if !s.SubsetOf(full) || s.IsSingleton() || s.IsEmpty() {
			continue
		}
		u := s.MinSet()
		v := s ^ u
		card[s] = card[u] * card[v] * g.FanProduct(s)
		costT[s] = newRow()
		choiceT[s] = make([]choice, numOrders)

		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			r := s ^ l
			lBest := costT[l][Unordered]
			rBest := costT[r][Unordered]
			// Hash join: unordered output.
			if c := lBest + rBest + params.hashCost(card[l], card[r]); c < costT[s][Unordered] {
				costT[s][Unordered] = c
				choiceT[s][Unordered] = choice{lhs: l, lhsOrder: Unordered, rhsOrd: Unordered, alg: "hashjoin", edge: -1}
			}
			// Merge join on each spanning predicate.
			for ei, e := range edges {
				if l.Has(e.A) && r.Has(e.B) || l.Has(e.B) && r.Has(e.A) {
					o := 1 + attr[ei]
					// Each input either arrives sorted on e, or arrives
					// unordered and is sorted here.
					lc, lo := costT[l][o], o
					if alt := lBest + params.sortCost(card[l]); alt < lc {
						lc, lo = alt, Unordered
					}
					rc, ro := costT[r][o], o
					if alt := rBest + params.sortCost(card[r]); alt < rc {
						rc, ro = alt, Unordered
					}
					total := lc + rc + params.mergeCost(card[l], card[r])
					if total < costT[s][o] {
						costT[s][o] = total
						choiceT[s][o] = choice{lhs: l, lhsOrder: lo, rhsOrd: ro, alg: "mergejoin", edge: ei}
					}
					// A sorted result is also an (unordered-acceptable) result.
					if total < costT[s][Unordered] {
						costT[s][Unordered] = total
						choiceT[s][Unordered] = choice{lhs: l, lhsOrder: lo, rhsOrd: ro, alg: "mergejoin", edge: ei}
					}
				}
			}
		}
		for _, c := range costT[s] {
			if !math.IsInf(c, 1) {
				states++
			}
		}
	}

	if math.IsInf(costT[full][Unordered], 1) {
		return nil, errors.New("orders: no plan found")
	}

	// Extract the plan.
	var build func(s bitset.Set, order int) *plan.Node
	build = func(s bitset.Set, order int) *plan.Node {
		if s.IsSingleton() {
			return plan.Leaf(s.Min(), card[s])
		}
		ch := choiceT[s][order]
		left := build(ch.lhs, ch.lhsOrder)
		right := build(s^ch.lhs, ch.rhsOrd)
		alg := ch.alg
		if ch.edge >= 0 {
			e := edges[ch.edge]
			alg = fmt.Sprintf("mergejoin(R%d.R%d)", e.A, e.B)
		}
		return &plan.Node{
			Set:       s,
			Card:      card[s],
			Cost:      costT[s][order],
			Algorithm: alg,
			Left:      left,
			Right:     right,
		}
	}
	root := build(full, Unordered)

	// Property-blind comparison: rerun with sorted outputs never reusable.
	naive := naiveCost(cards, g, params)

	return &Result{
		Plan:      root,
		Cost:      costT[full][Unordered],
		States:    states,
		NaiveCost: naive,
	}, nil
}

// naiveCost is the optimum when intermediates are always treated as
// unordered: merge joins always pay both sorts; hash joins unchanged. One
// entry per set, as in plain blitzsplit.
func naiveCost(cards []float64, g *joingraph.Graph, params CostParams) float64 {
	n := len(cards)
	size := 1 << uint(n)
	costT := make([]float64, size)
	card := make([]float64, size)
	for i := range costT {
		costT[i] = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		s := bitset.Single(i)
		costT[s] = 0
		card[s] = cards[i]
	}
	full := bitset.Full(n)
	for s := bitset.Set(3); s <= full; s++ {
		if !s.SubsetOf(full) || s.IsSingleton() || s.IsEmpty() {
			continue
		}
		u := s.MinSet()
		card[s] = card[u] * card[s^u] * g.FanProduct(s)
		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			r := s ^ l
			base := costT[l] + costT[r]
			// Hash join.
			if c := base + params.hashCost(card[l], card[r]); c < costT[s] {
				costT[s] = c
			}
			// Merge join, paying both sorts, if any predicate spans.
			if g.SpanProduct(l, r) < 1 || hasSpanningEdge(g, l, r) {
				c := base + params.sortCost(card[l]) + params.sortCost(card[r]) +
					params.mergeCost(card[l], card[r])
				if c < costT[s] {
					costT[s] = c
				}
			}
		}
	}
	return costT[full]
}

func hasSpanningEdge(g *joingraph.Graph, l, r bitset.Set) bool {
	found := false
	l.ForEach(func(i int) {
		if g.Neighbors(i).Overlaps(r) {
			found = true
		}
	})
	return found
}
