package orders

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"blitzsplit/internal/bitset"
	"blitzsplit/internal/joingraph"
	"blitzsplit/internal/plan"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// sharedKeyStar builds a star where every spoke joins the hub on the SAME
// key column: the canonical interesting-orders scenario. Hub = relation 0.
func sharedKeyStar(spokes int, hubCard, spokeCard, sel float64) Problem {
	n := spokes + 1
	g := joingraph.New(n)
	attr := make([]int, 0, spokes)
	for i := 1; i <= spokes; i++ {
		g.MustAddEdge(0, i, sel)
		attr = append(attr, 0) // all predicates on one attribute
	}
	cards := make([]float64, n)
	cards[0] = hubCard
	for i := 1; i <= spokes; i++ {
		cards[i] = spokeCard
	}
	return Problem{Cards: cards, Graph: g, EdgeAttr: attr}
}

func TestValidation(t *testing.T) {
	if _, err := Optimize(Problem{}, CostParams{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Optimize(Problem{Cards: []float64{1, 2}}, CostParams{}); err == nil {
		t.Error("graphless problem accepted")
	}
	if _, err := Optimize(Problem{Cards: []float64{1, 2}, Graph: joingraph.New(3)}, CostParams{}); err == nil {
		t.Error("mismatched graph accepted")
	}
	g := joingraph.New(2)
	g.MustAddEdge(0, 1, 0.5)
	if _, err := Optimize(Problem{Cards: []float64{1, 2}, Graph: g, EdgeAttr: []int{0, 1}}, CostParams{}); err == nil {
		t.Error("wrong-length EdgeAttr accepted")
	}
	if _, err := Optimize(Problem{Cards: []float64{1, 2}, Graph: g, EdgeAttr: []int{-1}}, CostParams{}); err == nil {
		t.Error("negative attribute accepted")
	}
}

// TestOrderAwareNeverWorseThanNaive and plan validity, on random problems.
func TestOrderAwareNeverWorseThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		p := randomProblem(rng, n)
		res, err := Optimize(p, CostParams{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > res.NaiveCost*(1+1e-9) {
			t.Errorf("trial %d: order-aware %v worse than naive %v", trial, res.Cost, res.NaiveCost)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Plan.Set != bitset.Full(n) {
			t.Fatalf("trial %d: coverage %v", trial, res.Plan.Set)
		}
	}
}

func randomProblem(rng *rand.Rand, n int) Problem {
	g := joingraph.New(n)
	var attrs []int
	numAttrs := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.6 {
				g.MustAddEdge(i, j, 0.01+0.5*rng.Float64())
				attrs = append(attrs, rng.Intn(numAttrs))
			}
		}
	}
	cards := make([]float64, n)
	for i := range cards {
		cards[i] = math.Floor(2 + rng.Float64()*500)
	}
	return Problem{Cards: cards, Graph: g, EdgeAttr: attrs}
}

// TestUniqueAttributesMatchNaive: with per-edge attributes (nil EdgeAttr),
// sorted outputs are never reusable, so the order-aware optimum must equal
// the property-blind optimum exactly.
func TestUniqueAttributesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		p := randomProblem(rng, n)
		p.EdgeAttr = nil
		res, err := Optimize(p, CostParams{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(res.Cost, res.NaiveCost) > 1e-9 {
			t.Errorf("trial %d: unique-attr cost %v ≠ naive %v", trial, res.Cost, res.NaiveCost)
		}
	}
}

// TestSharedKeyStarBeatsNaive: the §6.5 payoff — on a shared-key star, the
// hub is sorted once and merged with every spoke; the property-blind
// optimizer re-sorts the growing intermediate for every merge (or falls back
// to hash joins). The order-aware plan must be strictly cheaper.
func TestSharedKeyStarBeatsNaive(t *testing.T) {
	// Equal-size relations joining on one shared key with selectivity 1/card
	// keep every intermediate at ~card rows, so re-sorting the intermediate
	// at every level is real money; an expensive hash join (HashFactor 50)
	// keeps the plan in merge-join territory where order reuse pays.
	p := sharedKeyStar(4, 1000, 1000, 1e-3)
	res, err := Optimize(p, CostParams{HashFactor: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cost < res.NaiveCost*(1-1e-9)) {
		t.Errorf("interesting orders bought nothing: %v vs naive %v", res.Cost, res.NaiveCost)
	}
	// The winning plan should use merge joins (the whole point).
	merges := 0
	res.Plan.Walk(func(n *plan.Node) {
		if strings.HasPrefix(n.Algorithm, "mergejoin") {
			merges++
		}
	})
	if merges == 0 {
		t.Errorf("no merge joins in the order-aware plan:\n%s", res.Plan)
	}
}

// TestAgainstTreeOracle: independent validation — enumerate every tree shape
// and every per-node operator/sort decision by recursion on trees, and check
// the DP matches, for small n.
func TestAgainstTreeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(4) // n ≤ 5 keeps the oracle fast
		p := randomProblem(rng, n)
		res, err := Optimize(p, CostParams{})
		if err != nil {
			t.Fatal(err)
		}
		want := treeOracle(p, CostParams{}.defaults())
		if relDiff(res.Cost, want) > 1e-9 {
			t.Errorf("trial %d (n=%d): DP %v ≠ oracle %v", trial, n, res.Cost, want)
		}
	}
}

// treeOracle enumerates all bushy trees; for each tree it computes the
// optimal operator and sort decisions by bottom-up DP over (node, order) —
// an independent evaluation path sharing no table code with Optimize.
func treeOracle(p Problem, params CostParams) float64 {
	n := len(p.Cards)
	edges := p.Graph.Edges()
	attr := p.EdgeAttr
	if attr == nil {
		attr = make([]int, len(edges))
		for i := range attr {
			attr[i] = i
		}
	}
	numAttrs := 0
	for _, a := range attr {
		if a+1 > numAttrs {
			numAttrs = a + 1
		}
	}
	numOrders := 1 + numAttrs

	cardOf := func(s bitset.Set) float64 {
		return p.Graph.JoinCardinality(s, p.Cards)
	}

	// costs(tree) returns per-order costs for the subtree.
	type node struct {
		set         bitset.Set
		left, right *node
	}
	var costs func(t *node) []float64
	costs = func(t *node) []float64 {
		out := make([]float64, numOrders)
		for i := range out {
			out[i] = math.Inf(1)
		}
		if t.left == nil {
			out[Unordered] = 0
			for ei, e := range edges {
				rel := t.set.Min()
				if e.A == rel || e.B == rel {
					o := 1 + attr[ei]
					sc := params.sortCost(cardOf(t.set))
					if sc < out[o] {
						out[o] = sc
					}
				}
			}
			return out
		}
		lc := costs(t.left)
		rc := costs(t.right)
		lCard, rCard := cardOf(t.left.set), cardOf(t.right.set)
		// Hash join.
		if c := lc[Unordered] + rc[Unordered] + params.hashCost(lCard, rCard); c < out[Unordered] {
			out[Unordered] = c
		}
		// Merge joins on spanning predicates.
		for ei, e := range edges {
			spans := (t.left.set.Has(e.A) && t.right.set.Has(e.B)) ||
				(t.left.set.Has(e.B) && t.right.set.Has(e.A))
			if !spans {
				continue
			}
			o := 1 + attr[ei]
			lBest := math.Min(lc[o], lc[Unordered]+params.sortCost(lCard))
			rBest := math.Min(rc[o], rc[Unordered]+params.sortCost(rCard))
			total := lBest + rBest + params.mergeCost(lCard, rCard)
			if total < out[o] {
				out[o] = total
			}
			if total < out[Unordered] {
				out[Unordered] = total
			}
		}
		return out
	}

	best := math.Inf(1)
	var enumerate func(s bitset.Set, yield func(*node))
	enumerate = func(s bitset.Set, yield func(*node)) {
		if s.IsSingleton() {
			yield(&node{set: s})
			return
		}
		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			r := s ^ l
			enumerate(l, func(lt *node) {
				enumerate(r, func(rt *node) {
					yield(&node{set: s, left: lt, right: rt})
				})
			})
		}
	}
	enumerate(bitset.Full(n), func(t *node) {
		if c := costs(t)[Unordered]; c < best {
			best = c
		}
	})
	return best
}

// TestStatesGrowth: the (set, order) state count exceeds 2^n when shared
// attributes exist — the §6.5 price made visible.
func TestStatesGrowth(t *testing.T) {
	p := sharedKeyStar(5, 1e4, 20, 1e-4)
	res, err := Optimize(p, CostParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.States <= 1<<6-1 {
		t.Errorf("states = %d, want > 2^n", res.States)
	}
}

func TestCostParamsDefaults(t *testing.T) {
	p := CostParams{}.defaults()
	if p.SortFactor != 1 || p.MergeFactor != 1 || p.HashFactor != 3 {
		t.Errorf("defaults = %+v", p)
	}
	if got := p.sortCost(0.5); got != 0.5 {
		t.Errorf("sortCost(0.5) = %v (sub-1 clamp)", got)
	}
}
