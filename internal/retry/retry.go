// Package retry is the shared 503-backoff policy: how a polite client of
// blitzd (the serve-bench load generator, the cluster's peer forward/fill
// client) retries a shed request. The server's Retry-After header names the
// base wait; the policy backs off linearly with the attempt number, scales by
// a random jitter factor in [0.5, 1.5) so a shed burst does not re-collide on
// the retry, caps the wait, and bounds the attempt count.
package retry

import (
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Defaults applied by the zero Policy.
const (
	DefaultMaxAttempts = 5
	DefaultBase        = time.Second
	DefaultCap         = 2 * time.Second
)

// Policy parameterizes the backoff. The zero value retries up to 5 times
// with a 1 s base (overridden by Retry-After) capped at 2 s — the contract
// the serve bench has always applied.
type Policy struct {
	// MaxAttempts bounds how many retries one logical request may make after
	// its first try; 0 selects 5, negative disables retries entirely.
	MaxAttempts int
	// Base is the wait unit when the server sends no (or an unparsable)
	// Retry-After header; 0 selects 1 s.
	Base time.Duration
	// Cap bounds any single computed delay; 0 selects 2 s.
	Cap time.Duration
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts == 0 {
		return DefaultMaxAttempts
	}
	if p.MaxAttempts < 0 {
		return 0
	}
	return p.MaxAttempts
}

func (p Policy) base() time.Duration {
	if p.Base <= 0 {
		return DefaultBase
	}
	return p.Base
}

func (p Policy) cap() time.Duration {
	if p.Cap <= 0 {
		return DefaultCap
	}
	return p.Cap
}

// Retryable reports whether one more retry is allowed after `attempt`
// completed tries beyond the first (attempt counts retries already made, so
// Retryable(0) asks "may I retry at all?").
func (p Policy) Retryable(attempt int) bool { return attempt < p.maxAttempts() }

// Delay computes the jittered wait before retry number `attempt` (1-based:
// the first retry passes 1). header is the server's Retry-After value,
// interpreted as whole seconds per the blitzd contract; empty or unparsable
// falls back to the policy base. The wait grows linearly with the attempt,
// is scaled by a jitter factor drawn from rng in [0.5, 1.5), and never
// exceeds the cap. A non-negative parse of "0" yields zero delay.
func (p Policy) Delay(header string, attempt int, rng *rand.Rand) time.Duration {
	base := p.base()
	if s, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && s >= 0 {
		base = time.Duration(s) * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	jitter := 0.5 + rng.Float64() // [0.5, 1.5)
	d := time.Duration(float64(base) * float64(attempt) * jitter)
	if c := p.cap(); d > c {
		d = c
	}
	return d
}
