package retry

import (
	"math/rand"
	"testing"
	"time"
)

// TestDelayJitterBounds draws many delays and checks every one lands inside
// the analytic envelope [0.5, 1.5) × attempt × base, capped.
func TestDelayJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Hour}
	for attempt := 1; attempt <= 4; attempt++ {
		lo := time.Duration(float64(p.Base) * float64(attempt) * 0.5)
		hi := time.Duration(float64(p.Base) * float64(attempt) * 1.5)
		for i := 0; i < 1000; i++ {
			d := p.Delay("", attempt, rng)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, lo, hi)
			}
		}
	}
}

// TestDelayHonorsRetryAfter verifies the header overrides the base, including
// the zero case, and that garbage falls back to the policy base.
func TestDelayHonorsRetryAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Policy{Base: time.Minute, Cap: time.Hour}
	for i := 0; i < 100; i++ {
		if d := p.Delay("0", 1, rng); d != 0 {
			t.Fatalf("Retry-After 0: delay %v, want 0", d)
		}
		if d := p.Delay(" 2 ", 1, rng); d < time.Second || d >= 3*time.Second {
			t.Fatalf("Retry-After 2: delay %v outside [1s, 3s)", d)
		}
		if d := p.Delay("soon", 1, rng); d < 30*time.Second {
			t.Fatalf("unparsable header: delay %v, want >= base/2 = 30s", d)
		}
		if d := p.Delay("-1", 1, rng); d < 30*time.Second {
			t.Fatalf("negative header: delay %v, want fallback to base", d)
		}
	}
}

// TestDelayCap verifies no draw ever exceeds the cap, and that the default
// cap matches the historical serve-bench value.
func TestDelayCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Policy{} // defaults: base 1s, cap 2s
	for attempt := 1; attempt <= 10; attempt++ {
		for i := 0; i < 200; i++ {
			if d := p.Delay("30", attempt, rng); d > DefaultCap {
				t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, DefaultCap)
			}
		}
	}
}

// TestDelayClampsAttempt verifies attempt values below 1 behave as 1 rather
// than producing zero or negative waits.
func TestDelayClampsAttempt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Hour}
	for i := 0; i < 100; i++ {
		if d := p.Delay("", 0, rng); d < 50*time.Millisecond {
			t.Fatalf("attempt 0: delay %v below the attempt-1 floor", d)
		}
		if d := p.Delay("", -3, rng); d < 50*time.Millisecond {
			t.Fatalf("attempt -3: delay %v below the attempt-1 floor", d)
		}
	}
}

// TestRetryable pins the attempt budget: the zero policy allows exactly
// DefaultMaxAttempts retries, an explicit budget is honored, and a negative
// budget disables retries.
func TestRetryable(t *testing.T) {
	var p Policy
	for a := 0; a < DefaultMaxAttempts; a++ {
		if !p.Retryable(a) {
			t.Fatalf("zero policy: Retryable(%d) = false, want true", a)
		}
	}
	if p.Retryable(DefaultMaxAttempts) {
		t.Fatalf("zero policy: Retryable(%d) = true, want false", DefaultMaxAttempts)
	}
	p = Policy{MaxAttempts: 2}
	if !p.Retryable(1) || p.Retryable(2) {
		t.Fatalf("MaxAttempts 2: got Retryable(1)=%v Retryable(2)=%v, want true/false",
			p.Retryable(1), p.Retryable(2))
	}
	p = Policy{MaxAttempts: -1}
	if p.Retryable(0) {
		t.Fatal("negative MaxAttempts: Retryable(0) = true, want false")
	}
}
