package schema

import (
	"math"
	"math/rand"
	"testing"

	"blitzsplit/internal/bitset"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

func TestAddColumnValidation(t *testing.T) {
	s := New(2)
	if err := s.AddColumn(-1, "x", 10); err == nil {
		t.Error("bad relation accepted")
	}
	if err := s.AddColumn(0, "", 10); err == nil {
		t.Error("empty name accepted")
	}
	for _, d := range []float64{0, 0.5, -2, math.Inf(1), math.NaN()} {
		if err := s.AddColumn(0, "x", d); err == nil {
			t.Errorf("distinct %v accepted", d)
		}
	}
	if err := s.AddColumn(0, "x", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.AddColumn(0, "x", 20); err == nil {
		t.Error("duplicate column accepted")
	}
	if s.N() != 2 {
		t.Errorf("N = %d", s.N())
	}
}

func TestEquateValidation(t *testing.T) {
	s := New(3)
	s.MustAddColumn(0, "k", 10)
	s.MustAddColumn(1, "k", 20)
	s.MustAddColumn(0, "k2", 5)
	if err := s.Equate(0, "k", 0, "k2"); err == nil {
		t.Error("same-relation equate accepted")
	}
	if err := s.Equate(0, "k", 2, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if err := s.Equate(0, "nope", 1, "k"); err == nil {
		t.Error("unknown column accepted")
	}
	if err := s.Equate(0, "k", 1, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestClassesTransitive(t *testing.T) {
	s := New(3)
	s.MustAddColumn(0, "x", 100)
	s.MustAddColumn(1, "y", 50)
	s.MustAddColumn(2, "z", 200)
	s.MustAddColumn(2, "w", 7) // unequated: not a class
	s.MustEquate(0, "x", 1, "y")
	s.MustEquate(1, "y", 2, "z")
	classes := s.Classes()
	if len(classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(classes))
	}
	if len(classes[0]) != 3 {
		t.Fatalf("class size = %d, want 3 (transitive closure)", len(classes[0]))
	}
}

// TestJoinCardinalityWorkedExample: A.x = B.y = C.z with domains 100/50/200
// and cardinalities 1000/500/2000. Under containment, the class key ranges
// over 50 values: |A⋈B⋈C| = 1000·500·2000 · 50/(100·50·200).
func TestJoinCardinalityWorkedExample(t *testing.T) {
	s := New(3)
	s.MustAddColumn(0, "x", 100)
	s.MustAddColumn(1, "y", 50)
	s.MustAddColumn(2, "z", 200)
	s.MustEquate(0, "x", 1, "y")
	s.MustEquate(1, "y", 2, "z")
	cards := []float64{1000, 500, 2000}
	got := s.JoinCardinality(bitset.Of(0, 1, 2), cards)
	want := 1000.0 * 500 * 2000 * 50 / (100 * 50 * 200)
	if relDiff(got, want) > 1e-12 {
		t.Errorf("card = %v, want %v", got, want)
	}
	// Pairwise: |A⋈B| = 1000·500/max(100,50).
	if got := s.JoinCardinality(bitset.Of(0, 1), cards); relDiff(got, 1000*500/100.0) > 1e-12 {
		t.Errorf("|A⋈B| = %v", got)
	}
	// A alone: no constraint.
	if got := s.JoinCardinality(bitset.Of(0), cards); got != 1000 {
		t.Errorf("|A| = %v", got)
	}
	// A × C: both in the class… x and z are transitively equal, so the
	// implied predicate A.x = C.z applies: 1000·2000/max(100,200).
	if got := s.JoinCardinality(bitset.Of(0, 2), cards); relDiff(got, 1000*2000/200.0) > 1e-12 {
		t.Errorf("|A⋈C| (implied) = %v", got)
	}
}

// TestStepFactorMatchesReference: the recurrence card(S) =
// card(U)·card(V)·StepFactor(S) reproduces JoinCardinality on random schemas.
func TestStepFactorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(7)
		s := randomSchema(rng, n)
		cards := make([]float64, n)
		for i := range cards {
			cards[i] = math.Floor(10 + rng.Float64()*1000)
		}
		full := bitset.Full(n)
		card := make([]float64, 1<<uint(n))
		for i := 0; i < n; i++ {
			card[bitset.Single(i)] = cards[i]
		}
		for set := bitset.Set(3); set <= full; set++ {
			if !set.SubsetOf(full) || set.IsSingleton() || set.IsEmpty() {
				continue
			}
			u := set.MinSet()
			v := set ^ u
			card[set] = card[u] * card[v] * s.StepFactor(set)
			want := s.JoinCardinality(set, cards)
			if relDiff(card[set], want) > 1e-9 {
				t.Fatalf("trial %d S=%v: recurrence %v ≠ reference %v", trial, set, card[set], want)
			}
		}
	}
}

func randomSchema(rng *rand.Rand, n int) *Schema {
	s := New(n)
	// Up to 3 columns per relation.
	for r := 0; r < n; r++ {
		for c := 0; c < 1+rng.Intn(3); c++ {
			s.MustAddColumn(r, colName(c), math.Floor(2+rng.Float64()*500))
		}
	}
	// Random equates between distinct relations' existing columns.
	for i := 0; i < 2*n; i++ {
		ra, rb := rng.Intn(n), rng.Intn(n)
		if ra == rb {
			continue
		}
		ca, cb := colName(rng.Intn(3)), colName(rng.Intn(3))
		// Ignore errors for columns that don't exist on that relation.
		_ = s.Equate(ra, ca, rb, cb)
	}
	return s
}

func colName(i int) string { return string(rune('a' + i)) }

// TestRedundantPredicateNotDoubleCounted: the key point of the extension.
// Declaring all three pairwise predicates of a shared key must give the same
// cardinality as declaring two (the third is redundant), whereas a naive
// pairwise graph would apply three factors.
func TestRedundantPredicateNotDoubleCounted(t *testing.T) {
	build := func(predicates [][4]interface{}) *Schema {
		s := New(3)
		s.MustAddColumn(0, "k", 100)
		s.MustAddColumn(1, "k", 100)
		s.MustAddColumn(2, "k", 100)
		for _, p := range predicates {
			s.MustEquate(p[0].(int), p[1].(string), p[2].(int), p[3].(string))
		}
		return s
	}
	two := build([][4]interface{}{{0, "k", 1, "k"}, {1, "k", 2, "k"}})
	three := build([][4]interface{}{{0, "k", 1, "k"}, {1, "k", 2, "k"}, {0, "k", 2, "k"}})
	cards := []float64{1e4, 1e4, 1e4}
	full := bitset.Of(0, 1, 2)
	a := two.JoinCardinality(full, cards)
	b := three.JoinCardinality(full, cards)
	if relDiff(a, b) > 1e-12 {
		t.Errorf("redundant predicate changed the estimate: %v vs %v", a, b)
	}
	// Correct value: 1e12 / 100².
	if want := 1e12 / 1e4; relDiff(a, want) > 1e-12 {
		t.Errorf("class-aware estimate %v, want %v", a, want)
	}
	// The naive closure graph applies 1/100 three times: 1e12/1e6 — a 100×
	// underestimate. Verify the graphs differ as documented.
	g, err := three.ClosureGraph()
	if err != nil {
		t.Fatal(err)
	}
	naive := g.JoinCardinality(full, cards)
	if relDiff(naive, 1e12/1e6) > 1e-12 {
		t.Errorf("naive closure estimate = %v, want %v", naive, 1e12/1e6)
	}
}

func TestDeclaredAndClosureGraphs(t *testing.T) {
	s := New(3)
	s.MustAddColumn(0, "x", 100)
	s.MustAddColumn(1, "y", 50)
	s.MustAddColumn(2, "z", 200)
	s.MustEquate(0, "x", 1, "y")
	s.MustEquate(1, "y", 2, "z")
	dg, err := s.DeclaredGraph()
	if err != nil {
		t.Fatal(err)
	}
	if dg.NumEdges() != 2 {
		t.Errorf("declared edges = %d, want 2", dg.NumEdges())
	}
	if dg.HasEdge(0, 2) {
		t.Error("declared graph contains the implied edge")
	}
	cg, err := s.ClosureGraph()
	if err != nil {
		t.Fatal(err)
	}
	if cg.NumEdges() != 3 {
		t.Errorf("closure edges = %d, want 3", cg.NumEdges())
	}
	if !cg.HasEdge(0, 2) {
		t.Error("closure graph missing the implied edge")
	}
	if got := cg.Selectivity(0, 2); got != 1.0/200 {
		t.Errorf("implied selectivity = %v, want 1/200", got)
	}
	// Duplicate declared predicates between the same pair collapse.
	s2 := New(2)
	s2.MustAddColumn(0, "a", 10)
	s2.MustAddColumn(1, "a", 10)
	s2.MustAddColumn(0, "b", 99)
	s2.MustAddColumn(1, "b", 99)
	s2.MustEquate(0, "a", 1, "a")
	s2.MustEquate(0, "b", 1, "b")
	dg2, err := s2.DeclaredGraph()
	if err != nil {
		t.Fatal(err)
	}
	if dg2.NumEdges() != 1 {
		t.Errorf("pairwise projection edges = %d, want 1 (first predicate kept)", dg2.NumEdges())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}
