// Package schema implements the second §5 extension the paper mentions but
// does not develop: implied and redundant predicates. Join predicates are
// declared as equalities between named relation columns with known
// distinct-value counts; transitively equated columns form equivalence
// classes (A.x = B.y and B.y = C.z imply A.x = C.z).
//
// Treating each declared predicate independently — the plain joingraph model
// — double-counts redundant constraints: joining three relations on one
// shared key applies two constraints, not three. Under the standard
// uniformity + containment assumptions (a column with fewer distinct values
// is contained in one with more), the correct class contribution to the
// cardinality of a relation set S is
//
//	contribution(c, S) = dmin(c∩S) / ∏_{columns of c on relations in S} d
//
// (one 1/d per member column, with the smallest domain "refunded": the class
// key ranges over dmin values). This factors over the optimizer's §5.2
// recurrence: adding relation r = min(S) to V = S − {r} multiplies the
// cardinality by 1/max(d_r, dmin(c∩V)) per class c that r shares with V —
// which is what StepFactor computes, making Schema a drop-in CardEstimator
// for the core optimizer with O(columns of min S) work per subset.
package schema

import (
	"errors"
	"fmt"
	"math"

	"blitzsplit/internal/bitset"
	"blitzsplit/internal/joingraph"
)

// Column is a named join column of one relation.
type Column struct {
	// Rel is the owning relation's index.
	Rel int
	// Name is the column name, unique within the relation.
	Name string
	// Distinct is the number of distinct values (≥ 1).
	Distinct float64
}

// Schema tracks join columns and the equivalence classes induced by declared
// equi-join predicates.
type Schema struct {
	n      int
	cols   []Column
	byKey  map[colKey]int
	parent []int // union-find over column indexes
	// declared records the explicitly declared predicates (column index
	// pairs), as opposed to the implied ones.
	declared [][2]int
}

type colKey struct {
	rel  int
	name string
}

// New returns an empty schema over n relations.
func New(n int) *Schema {
	if n < 0 || n > bitset.MaxRelations {
		panic(fmt.Sprintf("schema: n = %d out of range [0,%d]", n, bitset.MaxRelations))
	}
	return &Schema{n: n, byKey: make(map[colKey]int)}
}

// N returns the number of relations.
func (s *Schema) N() int { return s.n }

// AddColumn declares a join column.
func (s *Schema) AddColumn(rel int, name string, distinct float64) error {
	if rel < 0 || rel >= s.n {
		return fmt.Errorf("schema: relation %d out of range [0,%d)", rel, s.n)
	}
	if name == "" {
		return errors.New("schema: column name must be nonempty")
	}
	if !(distinct >= 1) || math.IsInf(distinct, 0) {
		return fmt.Errorf("schema: column %d.%s distinct count %v must be ≥ 1 and finite", rel, name, distinct)
	}
	k := colKey{rel, name}
	if _, dup := s.byKey[k]; dup {
		return fmt.Errorf("schema: duplicate column %d.%s", rel, name)
	}
	s.byKey[k] = len(s.cols)
	s.cols = append(s.cols, Column{Rel: rel, Name: name, Distinct: distinct})
	s.parent = append(s.parent, len(s.parent))
	return nil
}

// MustAddColumn is AddColumn that panics on error.
func (s *Schema) MustAddColumn(rel int, name string, distinct float64) {
	if err := s.AddColumn(rel, name, distinct); err != nil {
		panic(err)
	}
}

func (s *Schema) find(i int) int {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

// Equate declares the equi-join predicate relA.colA = relB.colB, merging the
// two columns' equivalence classes. Equating two columns of the same
// relation is rejected (that is a local filter, not a join predicate).
func (s *Schema) Equate(relA int, colA string, relB int, colB string) error {
	if relA == relB {
		return fmt.Errorf("schema: cannot equate two columns of relation %d", relA)
	}
	ia, ok := s.byKey[colKey{relA, colA}]
	if !ok {
		return fmt.Errorf("schema: unknown column %d.%s", relA, colA)
	}
	ib, ok := s.byKey[colKey{relB, colB}]
	if !ok {
		return fmt.Errorf("schema: unknown column %d.%s", relB, colB)
	}
	s.declared = append(s.declared, [2]int{ia, ib})
	ra, rb := s.find(ia), s.find(ib)
	if ra != rb {
		s.parent[ra] = rb
	}
	return nil
}

// MustEquate is Equate that panics on error.
func (s *Schema) MustEquate(relA int, colA string, relB int, colB string) {
	if err := s.Equate(relA, colA, relB, colB); err != nil {
		panic(err)
	}
}

// Classes returns the equivalence classes with at least two member columns,
// each class's columns in declaration order. Deterministic.
func (s *Schema) Classes() [][]Column {
	groups := map[int][]Column{}
	var roots []int
	for i, c := range s.cols {
		r := s.find(i)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], c)
	}
	var out [][]Column
	for _, r := range roots {
		if len(groups[r]) >= 2 {
			out = append(out, groups[r])
		}
	}
	return out
}

// StepFactor implements the core optimizer's CardEstimator: the class-aware
// multiplicative factor for adding relation r = min(set) to V = set − {r}.
// Per equivalence class c with columns on r, the factor is
//
//	(∏_{r's columns in c} 1/d) · dmin(c ∩ set) / dmin(c ∩ V)
//
// with dmin(∅) treated as 1 in the quotient's denominator role — so a class
// present only on r contributes its own dmin refund, and a class shared with
// V contributes 1/max(…) in the common one-column-per-relation case.
func (s *Schema) StepFactor(set bitset.Set) float64 {
	r := set.Min()
	v := set.Diff(set.MinSet())
	// Effective domain of r per class: the minimum distinct count over r's
	// columns in that class (several same-class columns on one relation are
	// deduplicated — the class models a join constraint, not a local filter).
	perClass := map[int]float64{}
	for i, col := range s.cols {
		if col.Rel != r {
			continue
		}
		root := s.find(i)
		if d, ok := perClass[root]; !ok || col.Distinct < d {
			perClass[root] = col.Distinct
		}
	}
	factor := 1.0
	for root, dr := range perClass {
		dminV := math.Inf(1)
		for j, other := range s.cols {
			if other.Rel != r && v.Has(other.Rel) && s.find(j) == root {
				if other.Distinct < dminV {
					dminV = other.Distinct
				}
			}
		}
		if math.IsInf(dminV, 1) {
			continue // class absent from V: no new constraint
		}
		factor *= math.Min(dr, dminV) / (dr * dminV) // = (1/dr)·dmin(S)/dmin(V)
	}
	return factor
}

// JoinCardinality is the reference (non-recurrence) computation:
// ∏ cards[i∈set] × ∏_classes contribution(c, set).
func (s *Schema) JoinCardinality(set bitset.Set, cards []float64) float64 {
	card := 1.0
	set.ForEach(func(i int) { card *= cards[i] })
	// Per (class, relation): the relation's effective domain is the minimum
	// distinct count of its columns in the class.
	type crKey struct{ root, rel int }
	effective := map[crKey]float64{}
	for i, col := range s.cols {
		if !set.Has(col.Rel) {
			continue
		}
		k := crKey{s.find(i), col.Rel}
		if d, ok := effective[k]; !ok || col.Distinct < d {
			effective[k] = col.Distinct
		}
	}
	// Per class: contribution = dmin / ∏ per-relation effective domains,
	// when ≥ 2 relations participate (a class on one relation constrains
	// nothing).
	type acc struct {
		inv  float64
		dmin float64
		rels int
	}
	contrib := map[int]acc{}
	for k, d := range effective {
		a, ok := contrib[k.root]
		if !ok {
			a = acc{inv: 1, dmin: math.Inf(1)}
		}
		a.inv /= d
		if d < a.dmin {
			a.dmin = d
		}
		a.rels++
		contrib[k.root] = a
	}
	for _, a := range contrib {
		if a.rels >= 2 {
			card *= a.inv * a.dmin
		}
	}
	return card
}

// DeclaredGraph projects only the explicitly declared predicates to a binary
// join graph, each with the textbook selectivity 1/max(dA, dB). This is what
// a class-unaware optimizer would see; on transitive schemas it both misses
// implied edges and (if closed naively) double-counts redundant ones.
func (s *Schema) DeclaredGraph() (*joingraph.Graph, error) {
	g := joingraph.New(s.n)
	for _, p := range s.declared {
		a, b := s.cols[p[0]], s.cols[p[1]]
		sel := 1 / math.Max(a.Distinct, b.Distinct)
		if g.HasEdge(a.Rel, b.Rel) {
			continue // keep the first predicate between a relation pair
		}
		if err := g.AddEdge(a.Rel, b.Rel, sel); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ClosureGraph projects the transitive closure: one binary edge between every
// relation pair sharing an equivalence class, selectivity 1/max of the two
// column domains. Connectivity-faithful (useful for no-Cartesian-product
// baselines), but cardinality estimates from it over-apply redundant
// predicates — use the Schema itself as the optimizer's estimator for
// correct numbers.
func (s *Schema) ClosureGraph() (*joingraph.Graph, error) {
	g := joingraph.New(s.n)
	classes := s.Classes()
	for _, cls := range classes {
		for i := 0; i < len(cls); i++ {
			for j := i + 1; j < len(cls); j++ {
				a, b := cls[i], cls[j]
				if a.Rel == b.Rel || g.HasEdge(a.Rel, b.Rel) {
					continue
				}
				if err := g.AddEdge(a.Rel, b.Rel, 1/math.Max(a.Distinct, b.Distinct)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
