// Package bitset implements sets of relation names represented as machine-word
// bit-vectors, together with the subset-enumeration primitives that make the
// blitzsplit join-order optimizer fast (Vance & Maier, SIGMOD 1996, §4).
//
// A relation name is a small integer index i (0 ≤ i < MaxRelations); a set of
// relation names is a Set whose bit i is 1 iff relation i is a member. A Set's
// integer value doubles as its index into the optimizer's dynamic-programming
// table, so the numeric ordering of Sets (subsets have smaller values than no
// superset) is load-bearing: processing table entries in numeric order
// guarantees every proper subset of S is processed before S.
package bitset

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxRelations is the largest number of relations a Set can hold. The
// optimizer's table has 2^n entries, so memory — not this constant — is the
// practical limit (n = 30 would need 16 GiB of table at 16 B/entry).
const MaxRelations = 30

// Set is a set of relation indexes packed into a word. The zero value is the
// empty set.
type Set uint64

// Empty is the empty set.
const Empty Set = 0

// Single returns the singleton set {i}.
func Single(i int) Set {
	if i < 0 || i >= MaxRelations {
		panic(fmt.Sprintf("bitset: relation index %d out of range [0,%d)", i, MaxRelations))
	}
	return Set(1) << uint(i)
}

// Full returns the set {0, 1, …, n-1}.
func Full(n int) Set {
	if n < 0 || n > MaxRelations {
		panic(fmt.Sprintf("bitset: relation count %d out of range [0,%d]", n, MaxRelations))
	}
	return Set(1)<<uint(n) - 1
}

// Of returns the set containing exactly the given indexes.
func Of(indexes ...int) Set {
	var s Set
	for _, i := range indexes {
		s |= Single(i)
	}
	return s
}

// Has reports whether i is a member of s.
func (s Set) Has(i int) bool { return s&Single(i) != 0 }

// Add returns s ∪ {i}.
func (s Set) Add(i int) Set { return s | Single(i) }

// Remove returns s \ {i}.
func (s Set) Remove(i int) Set { return s &^ Single(i) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool { return s == 0 }

// Count returns |s|.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// IsSingleton reports whether |s| == 1, i.e. s is a single relation. Singleton
// table indexes are exactly the powers of two, which the optimizer's fill loop
// must skip (§4.2).
func (s Set) IsSingleton() bool { return s != 0 && s&(s-1) == 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Overlaps reports whether s ∩ t ≠ ∅.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// Min returns the smallest index in s. It panics on the empty set. In the
// paper's terms this is min S under the fixed total order on relation names
// (§5.3), computed as δ_S(1) = S & −S then converted to an index.
func (s Set) Min() int {
	if s == 0 {
		panic("bitset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// MinSet returns the singleton {min s} (the paper's S & −S). It panics on the
// empty set.
func (s Set) MinSet() Set {
	if s == 0 {
		panic("bitset: MinSet of empty set")
	}
	return s & -s
}

// Max returns the largest index in s. It panics on the empty set.
func (s Set) Max() int {
	if s == 0 {
		panic("bitset: Max of empty set")
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Members returns the indexes of s in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for t := s; t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(uint64(t)))
	}
	return out
}

// ForEach calls fn for each member of s in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for t := s; t != 0; t &= t - 1 {
		fn(bits.TrailingZeros64(uint64(t)))
	}
}

// NextSubset advances cur to the next nonempty proper subset of s using the
// two's-complement successor from §4.2:
//
//	succ(L) = S & (L − S)
//
// Enumeration starts from s.MinSet() (which is δ_S(1)) and ends when the
// returned value equals s itself (δ_S(2^m − 1)), which is not a proper subset
// and must not be used. The canonical loop is:
//
//	for l := s.MinSet(); l != s; l = s.NextSubset(l) { r := s ^ l; … }
//
// The iteration visits every one of the 2^m − 2 nonempty proper subsets
// exactly once (m = |s|), in increasing order of contracted value γ_S(L).
func (s Set) NextSubset(cur Set) Set { return s & (cur - s) }

// Subsets returns all nonempty proper subsets of s, in NextSubset order.
// Intended for tests and small sets; the optimizer loops in place instead.
func (s Set) Subsets() []Set {
	if s.IsSingleton() || s == 0 {
		return nil
	}
	out := make([]Set, 0, 1<<uint(s.Count())-2)
	for l := s.MinSet(); l != s; l = s.NextSubset(l) {
		out = append(out, l)
	}
	return out
}

// NextSubsetStride is the generalized successor from the paper's footnote 3:
// succ(δ(i)) = δ(i + k) for an arbitrary odd stride k, allowing the subsets to
// be visited in alternative orders that better match the randomness assumption
// of §3.3. stride must be odd so the walk cycles through all 2^m residues.
// The caller starts at any valid nonempty proper subset and stops when the
// start value recurs, skipping 0 and s when they appear:
//
//	start := s.MinSet()
//	l := start
//	for {
//		use(l)
//		l = s.NextSubsetStride(l, stride)
//		for l == 0 || l == s { l = s.NextSubsetStride(l, stride) }
//		if l == start { break }
//	}
func (s Set) NextSubsetStride(cur Set, stride int) Set {
	if stride&1 == 0 {
		panic("bitset: stride must be odd")
	}
	next := cur
	for i := 0; i < stride; i++ {
		next = s & (next - s)
	}
	return next
}

// FirstKSubset returns the numerically smallest set of exactly k relations,
// {0, 1, …, k−1} — the starting point of the Gosper enumeration over a
// popcount rank layer. k = 0 yields the empty set.
func FirstKSubset(k int) Set {
	if k < 0 || k > MaxRelations {
		panic(fmt.Sprintf("bitset: subset size %d out of range [0,%d]", k, MaxRelations))
	}
	return Set(1)<<uint(k) - 1
}

// LastKSubset returns the numerically largest k-subset of {0, …, n−1}: the k
// top bits of an n-bit universe. It is the Gosper enumeration's stopping
// value. k = 0 yields the empty set.
func LastKSubset(n, k int) Set {
	if k < 0 || k > n || n > MaxRelations {
		panic(fmt.Sprintf("bitset: k-subset bounds (n=%d, k=%d) out of range", n, k))
	}
	return (Set(1)<<uint(k) - 1) << uint(n-k)
}

// NextKSubset returns the numerically next set with the same popcount as v —
// Gosper's hack. Starting from FirstKSubset(k) it enumerates every k-subset
// of {0, …, n−1} in ascending numeric order; after LastKSubset(n, k) the
// returned value has bits at positions ≥ n, which is the caller's stopping
// condition. The empty set maps to itself. The enumeration order matters to
// the optimizer only in that it is fixed: within a popcount rank layer the DP
// entries are independent, so any deterministic order yields identical
// tables.
func NextKSubset(v Set) Set {
	if v == 0 {
		return 0
	}
	c := v & -v // lowest set bit
	r := v + c  // ripple it into the next run
	// (v ^ r) isolates the changed bits; shifting by 2 and dividing by c
	// right-justifies the ones that fell out of the run.
	return r | ((v^r)>>2)/c
}

// Binomial returns C(n, k), the number of k-subsets of an n-set. It is exact
// for every n ≤ MaxRelations (far below uint64 overflow).
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := uint64(1)
	for i := 1; i <= k; i++ {
		out = out * uint64(n-k+i) / uint64(i)
	}
	return out
}

// AppendKSubsetRange appends to dst the first member of each chunk of
// `chunk` consecutive k-subsets of {0, …, n−1} in Gosper order and returns
// the extended slice: chunk i covers the k-subsets from element i to just
// before element i+1 (the final chunk holds the remainder,
// Binomial(n,k) − (len−1)·chunk subsets). The parallel fill hands chunks to
// workers by striding this slice, so reusing dst across layers keeps the
// schedule allocation-free in steady state. k = 0 appends a single chunk
// holding the empty set; k > n appends nothing.
func AppendKSubsetRange(dst []Set, n, k, chunk int) []Set {
	if n < 0 || n > MaxRelations {
		panic(fmt.Sprintf("bitset: universe size %d out of range [0,%d]", n, MaxRelations))
	}
	if chunk < 1 {
		panic(fmt.Sprintf("bitset: chunk size %d must be ≥ 1", chunk))
	}
	if k < 0 || k > n {
		return dst
	}
	if k == 0 {
		return append(dst, Empty)
	}
	last := LastKSubset(n, k)
	s := FirstKSubset(k)
	for idx := 0; ; idx++ {
		if idx%chunk == 0 {
			dst = append(dst, s)
		}
		if s == last {
			return dst
		}
		s = NextKSubset(s)
	}
}

// KSubsetRange is AppendKSubsetRange into a fresh slice.
func KSubsetRange(n, k, chunk int) []Set {
	return AppendKSubsetRange(nil, n, k, chunk)
}

// DescendSubset is the classic descending enumerator (L − 1) & S. Starting
// from s&(s-1)... the canonical loop is:
//
//	for l := s.DescendSubset(s); l != 0; l = s.DescendSubset(l) { … }
//
// which visits the same 2^m − 2 nonempty proper subsets as NextSubset but in
// decreasing order of contracted value. Provided so the two enumerators can
// be property-tested against each other and ablated in benchmarks.
func (s Set) DescendSubset(cur Set) Set { return (cur - 1) & s }

// Dilate is the paper's δ_S operator (§4.2): it spreads the low |s| bits of i
// into the bit positions occupied by s. For example with s = 0b11001,
// Dilate(0b101) = 0b10001. Only the low s.Count() bits of i are used.
func (s Set) Dilate(i uint64) Set {
	var out Set
	bit := uint64(1)
	for t := s; t != 0; t &= t - 1 {
		if i&bit != 0 {
			out |= t & -t
		}
		bit <<= 1
	}
	return out
}

// Contract is the paper's γ_S operator, the left-inverse of Dilate: it
// collects the bits of w at positions occupied by s into a dense low-order
// integer. Contract(Dilate(i)) == i for i < 2^|s|.
func (s Set) Contract(w Set) uint64 {
	var out uint64
	bit := uint64(1)
	for t := s; t != 0; t &= t - 1 {
		if w&(t&-t) != 0 {
			out |= bit
		}
		bit <<= 1
	}
	return out
}

// String renders the set like {R0, R2, R5}; the empty set renders as {}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteByte('R')
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
