package bitset

import (
	"math/bits"
	"sort"
	"testing"
	"testing/quick"
)

func TestSingle(t *testing.T) {
	for i := 0; i < MaxRelations; i++ {
		s := Single(i)
		if !s.Has(i) {
			t.Errorf("Single(%d) does not contain %d", i, i)
		}
		if s.Count() != 1 {
			t.Errorf("Single(%d).Count() = %d, want 1", i, s.Count())
		}
		if !s.IsSingleton() {
			t.Errorf("Single(%d).IsSingleton() = false", i)
		}
	}
}

func TestSingleOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, MaxRelations, MaxRelations + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Single(%d) did not panic", i)
				}
			}()
			Single(i)
		}()
	}
}

func TestFull(t *testing.T) {
	if Full(0) != Empty {
		t.Errorf("Full(0) = %v, want empty", Full(0))
	}
	for n := 1; n <= MaxRelations; n++ {
		s := Full(n)
		if s.Count() != n {
			t.Errorf("Full(%d).Count() = %d", n, s.Count())
		}
		if s.Min() != 0 || s.Max() != n-1 {
			t.Errorf("Full(%d) min/max = %d/%d", n, s.Min(), s.Max())
		}
	}
}

func TestOf(t *testing.T) {
	s := Of(0, 2, 5)
	want := []int{0, 2, 5}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members() = %v, want %v", got, want)
		}
	}
	if Of() != Empty {
		t.Errorf("Of() = %v, want empty", Of())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(0, 1, 2)
	b := Of(2, 3)
	if got := a.Union(b); got != Of(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != Of(0, 1) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false")
	}
	if a.Overlaps(Of(4, 5)) {
		t.Error("Overlaps disjoint = true")
	}
	if !Of(1).SubsetOf(a) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !Empty.SubsetOf(a) || !Empty.SubsetOf(Empty) {
		t.Error("empty set must be subset of everything")
	}
}

func TestAddRemove(t *testing.T) {
	s := Empty.Add(3).Add(7).Add(3)
	if s != Of(3, 7) {
		t.Fatalf("Add = %v", s)
	}
	s = s.Remove(3).Remove(0)
	if s != Of(7) {
		t.Fatalf("Remove = %v", s)
	}
}

func TestMinMax(t *testing.T) {
	s := Of(4, 9, 17)
	if s.Min() != 4 {
		t.Errorf("Min = %d", s.Min())
	}
	if s.Max() != 17 {
		t.Errorf("Max = %d", s.Max())
	}
	if s.MinSet() != Of(4) {
		t.Errorf("MinSet = %v", s.MinSet())
	}
}

func TestMinEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Min":    func() { Empty.Min() },
		"Max":    func() { Empty.Max() },
		"MinSet": func() { Empty.MinSet() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty set did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIsSingleton(t *testing.T) {
	if Empty.IsSingleton() {
		t.Error("empty is not a singleton")
	}
	if Of(1, 2).IsSingleton() {
		t.Error("{1,2} is not a singleton")
	}
	if !Of(29).IsSingleton() {
		t.Error("{29} is a singleton")
	}
}

func TestForEachOrder(t *testing.T) {
	s := Of(9, 1, 23, 4)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !sort.IntsAreSorted(got) {
		t.Errorf("ForEach order = %v, want ascending", got)
	}
	if len(got) != 4 {
		t.Errorf("ForEach visited %d members, want 4", len(got))
	}
}

// TestNextSubsetEnumeratesAll checks the §4.2 successor against a reference:
// every nonempty proper subset appears exactly once.
func TestNextSubsetEnumeratesAll(t *testing.T) {
	cases := []Set{
		Of(0, 1),
		Of(0, 1, 2),
		Of(1, 3, 4, 7),
		Of(0, 2, 4, 6, 8, 10),
		Full(10),
		Of(5, 29),
	}
	for _, s := range cases {
		seen := map[Set]int{}
		n := 0
		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			if l == 0 {
				t.Fatalf("%v: enumerated empty set", s)
			}
			if !l.SubsetOf(s) {
				t.Fatalf("%v: %v is not a subset", s, l)
			}
			seen[l]++
			n++
			if n > 1<<uint(s.Count()) {
				t.Fatalf("%v: enumeration did not terminate", s)
			}
		}
		want := 1<<uint(s.Count()) - 2
		if n != want {
			t.Errorf("%v: enumerated %d subsets, want %d", s, n, want)
		}
		for sub, c := range seen {
			if c != 1 {
				t.Errorf("%v: subset %v seen %d times", s, sub, c)
			}
		}
	}
}

// TestNextSubsetMatchesDescend verifies the two enumerators yield the same
// set of subsets (property test over random masks).
func TestNextSubsetMatchesDescend(t *testing.T) {
	f := func(raw uint32) bool {
		s := Set(raw) & Full(16)
		if s.Count() < 2 {
			return true
		}
		up := map[Set]bool{}
		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			up[l] = true
		}
		down := map[Set]bool{}
		for l := s.DescendSubset(s); l != 0; l = s.DescendSubset(l) {
			down[l] = true
		}
		if len(up) != len(down) {
			return false
		}
		for k := range up {
			if !down[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNextSubsetSplitsPartition: for each enumerated lhs, lhs and s^lhs
// partition s into two nonempty halves.
func TestNextSubsetSplitsPartition(t *testing.T) {
	f := func(raw uint32) bool {
		s := Set(raw) & Full(18)
		if s.Count() < 2 {
			return true
		}
		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			r := s ^ l
			if l == 0 || r == 0 || l&r != 0 || l|r != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNextSubsetOrderIsContractedAscending: the paper says δ(1), δ(2), …,
// i.e. the contracted values ascend by 1 each step.
func TestNextSubsetOrderIsContractedAscending(t *testing.T) {
	s := Of(1, 4, 5, 9, 12)
	want := uint64(1)
	for l := s.MinSet(); l != s; l = s.NextSubset(l) {
		if got := s.Contract(l); got != want {
			t.Fatalf("contracted value = %d, want %d", got, want)
		}
		want++
	}
	if want != 1<<uint(s.Count())-1 {
		t.Fatalf("stopped at contracted value %d", want)
	}
}

func TestNextSubsetStride(t *testing.T) {
	s := Of(0, 2, 3, 6)
	for _, stride := range []int{1, 3, 5, 7, 9} {
		seen := map[Set]bool{}
		start := s.MinSet()
		l := start
		for {
			seen[l] = true
			l = s.NextSubsetStride(l, stride)
			for l == 0 || l == s {
				l = s.NextSubsetStride(l, stride)
			}
			if l == start {
				break
			}
			if len(seen) > 1<<uint(s.Count()) {
				t.Fatalf("stride %d: walk did not cycle", stride)
			}
		}
		if want := 1<<uint(s.Count()) - 2; len(seen) != want {
			t.Errorf("stride %d: visited %d subsets, want %d", stride, len(seen), want)
		}
	}
}

func TestNextSubsetStrideEvenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("even stride did not panic")
		}
	}()
	Of(0, 1, 2).NextSubsetStride(Of(0), 2)
}

func TestDilateContract(t *testing.T) {
	// Worked example from the paper: δ_11001(abc) = ab00c.
	s := Set(0b11001)
	if got := s.Dilate(0b101); got != Set(0b10001) {
		t.Errorf("Dilate(0b101) = %b, want 10001", got)
	}
	if got := s.Contract(Set(0b10001)); got != 0b101 {
		t.Errorf("Contract(0b10001) = %b, want 101", got)
	}
	// γ_11001(abcde) = abe: contract a full-width word.
	if got := s.Contract(Set(0b11001)); got != 0b111 {
		t.Errorf("Contract(S) = %b, want 111", got)
	}
}

func TestDilateContractRoundTrip(t *testing.T) {
	f := func(rawMask uint32, rawI uint16) bool {
		s := Set(rawMask) & Full(20)
		m := s.Count()
		i := uint64(rawI) & (1<<uint(m) - 1)
		d := s.Dilate(i)
		return d.SubsetOf(s) && s.Contract(d) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPaperIdentity4 checks equation (4): γ(δ(i) − δ(j)) = i − j, for i ≥ j,
// interpreting subtraction in two's complement on the dilated domain.
func TestPaperIdentity4(t *testing.T) {
	s := Set(0b11001)
	m := s.Count()
	for i := uint64(0); i < 1<<uint(m); i++ {
		for j := uint64(0); j <= i; j++ {
			di, dj := uint64(s.Dilate(i)), uint64(s.Dilate(j))
			got := s.Contract(Set(di-dj) & s)
			if got != i-j {
				t.Fatalf("γ(δ(%d)−δ(%d)) = %d, want %d", i, j, got, i-j)
			}
		}
	}
}

// TestPaperIdentity5and6 checks δ(γ(w)) = S & w and δ(−1) = S.
func TestPaperIdentity5and6(t *testing.T) {
	s := Set(0b1011010)
	m := s.Count()
	for w := Set(0); w < 1<<7; w++ {
		if got := s.Dilate(s.Contract(w)); got != s&w {
			t.Fatalf("δ(γ(%b)) = %b, want %b", w, got, s&w)
		}
	}
	allOnes := uint64(1)<<uint(m) - 1 // −1 in m-bit two's complement
	if got := s.Dilate(allOnes); got != s {
		t.Fatalf("δ(−1) = %b, want %b", got, s)
	}
}

func TestSubsetsHelper(t *testing.T) {
	if got := Of(3).Subsets(); got != nil {
		t.Errorf("singleton Subsets = %v, want nil", got)
	}
	if got := Empty.Subsets(); got != nil {
		t.Errorf("empty Subsets = %v, want nil", got)
	}
	subs := Of(0, 1, 2).Subsets()
	if len(subs) != 6 {
		t.Errorf("3-set has %d proper nonempty subsets, want 6", len(subs))
	}
}

func TestString(t *testing.T) {
	if got := Empty.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	if got := Of(0, 2, 5).String(); got != "{R0, R2, R5}" {
		t.Errorf("String = %q", got)
	}
}

func TestMembersMatchesCount(t *testing.T) {
	f := func(raw uint32) bool {
		s := Set(raw) & Full(MaxRelations)
		ms := s.Members()
		if len(ms) != s.Count() {
			return false
		}
		rebuilt := Empty
		for _, i := range ms {
			rebuilt = rebuilt.Add(i)
		}
		return rebuilt == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinSetIsLowestBit(t *testing.T) {
	f := func(raw uint32) bool {
		s := Set(raw) & Full(MaxRelations)
		if s == 0 {
			return true
		}
		return s.MinSet() == Set(1)<<uint(bits.TrailingZeros64(uint64(s)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkNextSubsetEnumeration(b *testing.B) {
	s := Full(15)
	b.ReportAllocs()
	var sink Set
	for i := 0; i < b.N; i++ {
		for l := s.MinSet(); l != s; l = s.NextSubset(l) {
			sink ^= l
		}
	}
	_ = sink
}

func BenchmarkDescendSubsetEnumeration(b *testing.B) {
	s := Full(15)
	b.ReportAllocs()
	var sink Set
	for i := 0; i < b.N; i++ {
		for l := s.DescendSubset(s); l != 0; l = s.DescendSubset(l) {
			sink ^= l
		}
	}
	_ = sink
}
