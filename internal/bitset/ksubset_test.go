package bitset

import (
	"math/bits"
	"testing"
)

// filterKSubsets is the oracle: every value in [0, 2^n) with popcount k, in
// ascending numeric order.
func filterKSubsets(n, k int) []Set {
	var out []Set
	for v := Set(0); v < Set(1)<<uint(n); v++ {
		if bits.OnesCount64(uint64(v)) == k {
			out = append(out, v)
		}
	}
	return out
}

// TestNextKSubsetMatchesFilter checks the Gosper enumeration against the
// popcount-filter oracle for every (n, k) with n ≤ 14, including the edge
// layers k = 1 (singletons) and k = n (one subset: the full set).
func TestNextKSubsetMatchesFilter(t *testing.T) {
	for n := 1; n <= 14; n++ {
		for k := 1; k <= n; k++ {
			want := filterKSubsets(n, k)
			if got := uint64(len(want)); got != Binomial(n, k) {
				t.Fatalf("oracle bug: %d subsets vs C(%d,%d)=%d", got, n, k, Binomial(n, k))
			}
			last := LastKSubset(n, k)
			var got []Set
			for s := FirstKSubset(k); ; s = NextKSubset(s) {
				got = append(got, s)
				if s == last {
					break
				}
				if len(got) > len(want) {
					t.Fatalf("n=%d k=%d: enumeration overran the layer (at %v)", n, k, s)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: got %d subsets, want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: element %d = %v, want %v", n, k, i, got[i], want[i])
				}
			}
			// Past the last k-subset, Gosper must leave the n-bit universe —
			// the stopping condition the optimizer's bound check relies on.
			if next := NextKSubset(last); k < n && next <= Full(n) {
				t.Fatalf("n=%d k=%d: NextKSubset(last)=%v still inside Full(%d)", n, k, next, n)
			}
		}
	}
}

// TestNextKSubsetEmpty pins the k=0 convention: the empty set is a fixpoint.
func TestNextKSubsetEmpty(t *testing.T) {
	if got := NextKSubset(Empty); got != Empty {
		t.Fatalf("NextKSubset(∅) = %v, want ∅", got)
	}
}

// TestKSubsetRangeTilesLayer checks that the chunk starts partition the
// Gosper enumeration exactly: walking `chunk` subsets from each start (the
// remainder from the last) reconstructs the filter oracle with no overlap,
// for a spread of chunk sizes including 1 and one larger than the layer.
func TestKSubsetRangeTilesLayer(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for k := 1; k <= n; k++ {
			want := filterKSubsets(n, k)
			total := len(want)
			for _, chunk := range []int{1, 2, 3, 7, total, total + 5} {
				starts := KSubsetRange(n, k, chunk)
				wantChunks := (total + chunk - 1) / chunk
				if len(starts) != wantChunks {
					t.Fatalf("n=%d k=%d chunk=%d: %d chunks, want %d", n, k, chunk, len(starts), wantChunks)
				}
				var got []Set
				for ci, s := range starts {
					size := chunk
					if ci == len(starts)-1 {
						size = total - ci*chunk
					}
					for j := 0; j < size; j++ {
						got = append(got, s)
						s = NextKSubset(s)
					}
				}
				if len(got) != total {
					t.Fatalf("n=%d k=%d chunk=%d: tiled %d subsets, want %d", n, k, chunk, len(got), total)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d chunk=%d: element %d = %v, want %v", n, k, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestKSubsetRangeEdges pins the degenerate inputs.
func TestKSubsetRangeEdges(t *testing.T) {
	if got := KSubsetRange(5, 0, 4); len(got) != 1 || got[0] != Empty {
		t.Fatalf("KSubsetRange(5,0,4) = %v, want [∅]", got)
	}
	if got := KSubsetRange(5, 6, 4); got != nil {
		t.Fatalf("KSubsetRange(5,6,4) = %v, want nil", got)
	}
	// Reuse path: appending into a recycled slice must not disturb content.
	buf := make([]Set, 0, 8)
	a := AppendKSubsetRange(buf, 4, 2, 2)
	b := AppendKSubsetRange(a[:0], 4, 2, 2)
	if len(a) != len(b) {
		t.Fatalf("reuse changed chunk count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if b[i] != a[i] {
			t.Fatalf("reuse changed chunk %d: %v vs %v", i, b[i], a[i])
		}
	}
}

// TestBinomial spot-checks the closed form against Pascal's rule.
func TestBinomial(t *testing.T) {
	for n := 0; n <= MaxRelations; n++ {
		for k := 0; k <= n; k++ {
			var want uint64
			switch {
			case k == 0 || k == n:
				want = 1
			default:
				want = Binomial(n-1, k-1) + Binomial(n-1, k)
			}
			if got := Binomial(n, k); got != want {
				t.Fatalf("C(%d,%d) = %d, want %d", n, k, got, want)
			}
		}
	}
	if got := Binomial(5, 7); got != 0 {
		t.Fatalf("C(5,7) = %d, want 0", got)
	}
}
