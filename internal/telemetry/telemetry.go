// Package telemetry is a dependency-free metrics layer for the serving
// subsystem: atomic counters, callback gauges, and log2-bucket latency
// histograms, collected in a Registry that renders both the Prometheus text
// exposition format (served at /metrics) and a JSON snapshot (served at
// /debug/vars). Everything is safe for concurrent use; counter increments
// and histogram observations are single atomic operations on the hot path.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing uint64. Incrementing is one atomic
// add; reads are exact (never sampled), which the serving tests rely on when
// they assert request accounting to the last unit.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// histBuckets is the number of log2 latency buckets: bucket i holds
// observations d with d ≤ 2^i nanoseconds, so the range spans 1 ns to ~9.2 s
// ... and far beyond (2^63 ns ≈ 292 years) — every observable latency lands
// in a real bucket and +Inf exists only to satisfy the exposition format.
const histBuckets = 64

// A Histogram accumulates durations into log2-width buckets. Observation is
// two atomic adds (bucket count and sum); quantiles are estimated from the
// bucket upper bounds, so they are exact to within a factor of 2 — the right
// trade for a serving loop that must not allocate or lock per request.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sumNS  atomic.Uint64
	count  atomic.Uint64
}

// bucketIndex returns the smallest i with ns ≤ 2^i.
func bucketIndex(ns uint64) int {
	if ns <= 1 {
		return 0
	}
	return bits.Len64(ns - 1)
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket containing that rank: an overestimate by at most 2×. Returns 0 when
// nothing has been observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(uint64(1) << i)
		}
	}
	return time.Duration(math.MaxInt64)
}

// metricKind discriminates what a registered metric renders as.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered time series: a name, an optional constant label
// set (rendered inside {} verbatim), help text, and the value source.
type metric struct {
	name   string
	labels string
	help   string
	kind   metricKind
	c      *Counter
	g      func() float64
	h      *Histogram
}

// Registry holds an ordered set of metrics. Register methods return existing
// metrics when called twice with the same (name, labels) pair, so independent
// components can share a series without coordinating initialization order.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[[2]string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[[2]string]*metric)}
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := [2]string{m.name, m.labels}
	if old, ok := r.index[key]; ok {
		return old
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns the existing) counter under name with the
// given constant labels (e.g. `code="503"`; empty for none).
func (r *Registry) Counter(name, labels, help string) *Counter {
	m := r.register(&metric{name: name, labels: labels, help: help, kind: kindCounter, c: &Counter{}})
	return m.c
}

// GaugeFunc registers a gauge whose value is read from f at exposition time —
// the natural shape for snapshot sources like Engine.Stats. Re-registering
// the same (name, labels) keeps the first callback.
func (r *Registry) GaugeFunc(name, labels, help string, f func() float64) {
	r.register(&metric{name: name, labels: labels, help: help, kind: kindGauge, g: f})
}

// Histogram registers (or returns the existing) log2 latency histogram.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	m := r.register(&metric{name: name, labels: labels, help: help, kind: kindHistogram, h: &Histogram{}})
	return m.h
}

// snapshotMetrics copies the metric list under the lock; the metrics
// themselves are read atomically afterwards.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}
