package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Metrics sharing a name emit one
// HELP/TYPE header (the first registration's help wins); histograms emit
// cumulative le buckets trimmed to the occupied range plus +Inf, _sum, and
// _count.
func (r *Registry) WriteProm(w io.Writer) error {
	ms := r.snapshotMetrics()
	// Group same-name series together (stable within a name by registration
	// order) so each name gets exactly one HELP/TYPE header.
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var lastName string
	for _, m := range ms {
		if m.name != lastName {
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			lastName = m.name
		}
		if err := writePromSeries(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writePromSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(m.name, m.labels), m.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(m.name, m.labels),
			strconv.FormatFloat(m.g(), 'g', -1, 64))
		return err
	case kindHistogram:
		return writePromHistogram(w, m)
	}
	return nil
}

// seriesName renders name{labels} (or the bare name when labels are empty).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// bucketLabel joins the constant labels with the le bound.
func bucketLabel(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func writePromHistogram(w io.Writer, m *metric) error {
	h := m.h
	// Find the highest occupied bucket so the output stays readable; the
	// cumulative counts below it fully determine every trimmed bucket.
	top := 0
	var counts [histBuckets]uint64
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.counts[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(float64(uint64(1)<<i)/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.name, bucketLabel(m.labels, le), cum); err != nil {
			return err
		}
	}
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.name, bucketLabel(m.labels, "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(m.name+"_sum", m.labels),
		strconv.FormatFloat(h.Sum().Seconds(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(m.name+"_count", m.labels), count)
	return err
}

// HistogramSnapshot is the /debug/vars view of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	SumS  float64 `json:"sum_seconds"`
	P50S  float64 `json:"p50_seconds"`
	P99S  float64 `json:"p99_seconds"`
}

// Snapshot returns count, sum, and the two headline quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		SumS:  h.Sum().Seconds(),
		P50S:  h.Quantile(0.50).Seconds(),
		P99S:  h.Quantile(0.99).Seconds(),
	}
}

// WriteJSON renders every metric as one flat JSON object keyed by
// name{labels}: counters as integers, gauges as numbers, histograms as
// {count, sum_seconds, p50_seconds, p99_seconds} objects. Served at
// /debug/vars.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.snapshotMetrics()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		key := seriesName(m.name, m.labels)
		switch m.kind {
		case kindCounter:
			out[key] = m.c.Value()
		case kindGauge:
			out[key] = m.g()
		case kindHistogram:
			out[key] = m.h.Snapshot()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Timer measures one code section into a histogram:
//
//	defer tel.Timer(h)()
func Timer(h *Histogram) func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}
