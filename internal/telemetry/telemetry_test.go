package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

// Concurrent increments must account exactly: the serving tests assert
// request counters to the last unit, so the counter itself has to be exact
// under contention.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {(1 << 20) + 1, 21},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 99 fast observations and one slow one: p50 lands in the fast bucket,
	// p99+ in the slow one; the estimate is each bucket's upper bound.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Nanosecond) // bucket 7: ≤128 ns
	}
	h.Observe(time.Second) // bucket 30: ≤ 2^30 ns ≈ 1.07 s
	if got := h.Quantile(0.50); got != 128*time.Nanosecond {
		t.Errorf("p50 = %v, want 128ns", got)
	}
	if got := h.Quantile(1.0); got != time.Duration(1<<30) {
		t.Errorf("p100 = %v, want %v", got, time.Duration(1<<30))
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	wantSum := 99*100*time.Nanosecond + time.Second
	if got := h.Sum(); got != wantSum {
		t.Errorf("Sum = %v, want %v", got, wantSum)
	}
	// Quantile extremes clamp instead of indexing out of range.
	if got := h.Quantile(0); got != 128*time.Nanosecond {
		t.Errorf("p0 = %v, want first occupied bucket bound", got)
	}
	// Negative durations observe as zero rather than corrupting the sum.
	var h2 Histogram
	h2.Observe(-time.Second)
	if h2.Sum() != 0 || h2.Count() != 1 {
		t.Errorf("negative observe: sum %v count %d", h2.Sum(), h2.Count())
	}
}

func TestRegistryDeduplicates(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", `code="200"`, "")
	b := r.Counter("x_total", `code="200"`, "")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", `code="503"`, "")
	if a == c {
		t.Fatal("different labels must be distinct series")
	}
	h1 := r.Histogram("lat_seconds", "", "")
	h2 := r.Histogram("lat_seconds", "", "")
	if h1 != h2 {
		t.Fatal("histogram registration must deduplicate")
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("blitzd_requests_total", `code="200"`, "Requests by status code.")
	r.Counter("blitzd_requests_total", `code="503"`, "Requests by status code.").Add(3)
	reqs.Add(7)
	r.GaugeFunc("blitzd_inflight", "", "In-flight requests.", func() float64 { return 2.5 })
	h := r.Histogram("blitzd_latency_seconds", "", "Request latency.")
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE blitzd_requests_total counter",
		"# HELP blitzd_requests_total Requests by status code.",
		`blitzd_requests_total{code="200"} 7`,
		`blitzd_requests_total{code="503"} 3`,
		"# TYPE blitzd_inflight gauge",
		"blitzd_inflight 2.5",
		"# TYPE blitzd_latency_seconds histogram",
		`blitzd_latency_seconds_bucket{le="+Inf"} 2`,
		"blitzd_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per name even with two labeled series.
	if n := strings.Count(out, "# TYPE blitzd_requests_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
	// Buckets must be cumulative and end at the total count.
	if !strings.Contains(out, `blitzd_latency_seconds_bucket{le="1.28e-07"} 1`) {
		t.Errorf("missing cumulative 128ns bucket:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", "").Add(5)
	r.GaugeFunc("g", "", "", func() float64 { return 1.5 })
	h := r.Histogram("lat_seconds", "", "")
	h.Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if m["a_total"].(float64) != 5 {
		t.Errorf("a_total = %v", m["a_total"])
	}
	if m["g"].(float64) != 1.5 {
		t.Errorf("g = %v", m["g"])
	}
	hs := m["lat_seconds"].(map[string]any)
	if hs["count"].(float64) != 1 {
		t.Errorf("histogram count = %v", hs["count"])
	}
	if hs["p50_seconds"].(float64) <= 0 {
		t.Errorf("histogram p50 = %v, want > 0", hs["p50_seconds"])
	}
}

func TestTimer(t *testing.T) {
	var h Histogram
	done := Timer(&h)
	time.Sleep(time.Millisecond)
	done()
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Sum() < time.Millisecond {
		t.Fatalf("Sum = %v, want ≥ 1ms", h.Sum())
	}
}
