package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"blitzsplit/internal/cost"
	"blitzsplit/internal/joingraph"
	"blitzsplit/internal/workload"
)

func TestMeasureTable1(t *testing.T) {
	m := Measure(workload.Table1Case(), time.Millisecond)
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Cost != 241000 {
		t.Errorf("cost = %v, want 241000", m.Cost)
	}
	if m.Runs < 1 || m.Seconds <= 0 {
		t.Errorf("runs=%d seconds=%v", m.Runs, m.Seconds)
	}
}

func TestMeasureRespectsBudget(t *testing.T) {
	c := workload.CartesianCase(4, 100)
	quick := Measure(c, time.Microsecond)
	long := Measure(c, 20*time.Millisecond)
	if long.Runs <= quick.Runs {
		t.Errorf("bigger budget did not add runs: %d vs %d", long.Runs, quick.Runs)
	}
}

func TestMeasureError(t *testing.T) {
	c := workload.CartesianCase(3, 1e30) // κ′ overflows float32 for every plan
	m := Measure(c, time.Millisecond)
	if m.Err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestMeasureAllAndCSV(t *testing.T) {
	cases := workload.Figure2Cases(2, 6)
	var progress strings.Builder
	ms := MeasureAll(cases, time.Millisecond, &progress)
	if len(ms) != len(cases) {
		t.Fatalf("measured %d of %d", len(ms), len(cases))
	}
	if !strings.Contains(progress.String(), "fig2/n=3") {
		t.Error("progress output missing case names")
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, ms); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(cases)+1 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name,n,model,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "fig2/n=2") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestReportFigure2(t *testing.T) {
	ms := MeasureAll(workload.Figure2Cases(4, 10), time.Millisecond, nil)
	var out strings.Builder
	ReportFigure2(&out, ms)
	s := out.String()
	for _, want := range []string{"Figure 2", "loop iters", "formula (3) fit", "T_loop"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestReportGrid(t *testing.T) {
	var cases []workload.Case
	for _, c := range workload.Figure5Cases(9) {
		// Subsample to keep the test fast: variability 0 and 1 only.
		if c.Variability == 0 || c.Variability == 1 {
			cases = append(cases, c)
		}
	}
	ms := MeasureAll(cases, time.Microsecond, nil)
	var out strings.Builder
	ReportGrid(&out, "Figure 5 close-ups", ms)
	s := out.String()
	for _, want := range []string{"Figure 5", "naive × chain", "dnl × cycle+3", "mean\\var"} {
		if !strings.Contains(s, want) {
			t.Errorf("grid missing %q:\n%s", want, s)
		}
	}
}

func TestReportGridFlagsMultiPass(t *testing.T) {
	// A tight threshold forces multiple passes → the cell gets a *N flag.
	c := workload.AppendixCase(joingraph.TopoChain, cost.NewDiskNestedLoops(), 1e6, 0, 7)
	c.Threshold = 1e-3
	ms := MeasureAll([]workload.Case{c}, time.Microsecond, nil)
	if ms[0].Err != nil {
		t.Fatal(ms[0].Err)
	}
	if ms[0].Counters.Passes < 2 {
		t.Skip("threshold did not force a second pass on this input")
	}
	var out strings.Builder
	ReportGrid(&out, "fig6", ms)
	if !strings.Contains(out.String(), "*") {
		t.Errorf("multi-pass cell not flagged:\n%s", out.String())
	}
}

func TestReportCounts(t *testing.T) {
	ms := MeasureAll([]workload.Case{workload.CartesianCase(8, 100)}, time.Microsecond, nil)
	var out strings.Builder
	ReportCounts(&out, ms)
	if !strings.Contains(out.String(), "κ″ evals") {
		t.Errorf("counts report malformed:\n%s", out.String())
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2, 10); got != 5 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(0, 1), 1) {
		t.Error("Speedup(0, ·) should be +Inf")
	}
}
