// Package harness measures optimizer runs and renders the paper's tables and
// figures as text. It follows the paper's timing methodology — each point is
// an average over k back-to-back runs with k·t at least a fixed wall budget
// (the paper used 30 s on 1996 hardware; the default here is scaled down and
// configurable) — and it fits the §3.3 execution-time formula (3) to
// Figure-2-style sweeps to recover the constants T_loop, T_cond, T_subset.
package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"blitzsplit/internal/core"
	"blitzsplit/internal/stats"
	"blitzsplit/internal/workload"
)

// DefaultBudget is the minimum cumulative wall time per measurement point.
const DefaultBudget = 200 * time.Millisecond

// Measurement is one timed evaluation point.
type Measurement struct {
	// Case is the input that was optimized.
	Case workload.Case
	// Seconds is the average wall time per optimization run.
	Seconds float64
	// Runs is the number of back-to-back runs averaged.
	Runs int
	// Cost is the optimal plan cost found.
	Cost float64
	// Counters are the instrumentation counts from the final run.
	Counters core.Counters
	// Err is non-nil when optimization failed (e.g. overflow with no plan).
	Err error
}

// options converts a workload case to optimizer options. Harness runs
// always discard the DP table: a Measurement only reads scalars, and
// retaining four 2^n-element columns per measured point would pin hundreds
// of MB across a sweep at large n.
func options(c workload.Case) core.Options {
	return core.Options{
		Model:         c.Model,
		CostThreshold: c.Threshold,
		Parallelism:   c.Parallelism,
		Enumerator:    c.Enumerator,
		DiscardTable:  true,
	}
}

// Measure times one case: it repeats optimization until the cumulative wall
// time reaches budget (at least one run) and averages. The repeated runs
// share one DP table via a core.Arena — each run checks the table out and
// returns it — so the steady state allocates nothing per run: the timing
// measures the fill, not the allocator.
func Measure(c workload.Case, budget time.Duration) Measurement {
	return measure(c, budget, core.NewArena(0))
}

// measure is Measure against a caller-supplied arena, so sweeps share pooled
// tables across cases (MeasureAll) instead of re-allocating per case.
func measure(c workload.Case, budget time.Duration, arena *core.Arena) Measurement {
	if budget <= 0 {
		budget = DefaultBudget
	}
	q := core.Query{Cards: c.Cards, Graph: c.Graph}
	opts := options(c)
	opts.Arena = arena
	var runs int
	var last *core.Result
	var err error
	start := time.Now()
	for {
		last, err = core.Optimize(q, opts)
		runs++
		if err != nil {
			return Measurement{Case: c, Runs: runs, Err: err,
				Seconds: time.Since(start).Seconds() / float64(runs)}
		}
		if time.Since(start) >= budget {
			break
		}
	}
	m := Measurement{
		Case:     c,
		Seconds:  time.Since(start).Seconds() / float64(runs),
		Runs:     runs,
		Cost:     last.Cost,
		Counters: last.Counters,
	}
	return m
}

// MeasureAll measures every case, streaming one progress line per case to
// progress when non-nil.
func MeasureAll(cases []workload.Case, budget time.Duration, progress io.Writer) []Measurement {
	out := make([]Measurement, 0, len(cases))
	arena := core.NewArena(0)
	for _, c := range cases {
		m := measure(c, budget, arena)
		out = append(out, m)
		if progress != nil {
			if m.Err != nil {
				fmt.Fprintf(progress, "%-48s ERROR %v\n", c.Name, m.Err)
			} else {
				fmt.Fprintf(progress, "%-48s %10.4gs  (%d runs, %d passes)\n",
					c.Name, m.Seconds, m.Runs, m.Counters.Passes)
			}
		}
	}
	return out
}

// WriteCSV emits the measurements as CSV with a fixed column set.
func WriteCSV(w io.Writer, ms []Measurement) error {
	if _, err := fmt.Fprintln(w,
		"name,n,model,topology,mean_card,variability,threshold,seconds,runs,cost,passes,loop_iters,kpp_evals,kp_evals,cond_hits,threshold_skips,error"); err != nil {
		return err
	}
	for _, m := range ms {
		c := m.Case
		modelName := ""
		if c.Model != nil {
			modelName = c.Model.Name()
		}
		topo := ""
		if c.Graph != nil {
			topo = c.Topology.String()
		}
		errStr := ""
		if m.Err != nil {
			errStr = strings.ReplaceAll(m.Err.Error(), ",", ";")
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%s,%g,%g,%g,%.9g,%d,%.9g,%d,%d,%d,%d,%d,%d,%s\n",
			c.Name, c.N, modelName, topo, c.MeanCard, c.Variability, c.Threshold,
			m.Seconds, m.Runs, m.Cost, m.Counters.Passes,
			m.Counters.LoopIters, m.Counters.KppEvals, m.Counters.KpEvals,
			m.Counters.CondHits, m.Counters.ThresholdSkips, errStr); err != nil {
			return err
		}
	}
	return nil
}

// ReportFigure2 renders a Figure-2-style table — optimization time vs n for
// Cartesian products — plus the formula-(3) fit when at least 4 points are
// available.
func ReportFigure2(w io.Writer, ms []Measurement) {
	fmt.Fprintln(w, "Figure 2 — Cartesian product optimization times")
	fmt.Fprintln(w, "(paper: SPARC-2 T_loop ≈ 180 ns, HP-755 T_loop ≈ 50 ns; 15-way ≈ 0.9 s on the HP)")
	fmt.Fprintf(w, "%4s  %12s  %14s  %14s\n", "n", "seconds", "loop iters", "ns/loop-iter")
	var ns []int
	var secs []float64
	for _, m := range ms {
		if m.Err != nil {
			fmt.Fprintf(w, "%4d  ERROR %v\n", m.Case.N, m.Err)
			continue
		}
		perIter := math.NaN()
		if m.Counters.LoopIters > 0 {
			perIter = m.Seconds / float64(m.Counters.LoopIters) * 1e9
		}
		fmt.Fprintf(w, "%4d  %12.6f  %14d  %14.2f\n", m.Case.N, m.Seconds, m.Counters.LoopIters, perIter)
		ns = append(ns, m.Case.N)
		secs = append(secs, m.Seconds)
	}
	if len(ns) >= 4 {
		tLoop, tCond, tSubset, err := stats.FitFormula3(ns, secs)
		if err != nil {
			fmt.Fprintf(w, "formula (3) fit failed: %v\n", err)
			return
		}
		fmt.Fprintf(w, "formula (3) fit: T_loop = %.3g ns, T_cond = %.3g ns, T_subset = %.3g ns\n",
			tLoop*1e9, tCond*1e9, tSubset*1e9)
		// Show fit quality at the largest n.
		last := len(ns) - 1
		pred := stats.EvalFormula3(ns[last], tLoop, tCond, tSubset)
		fmt.Fprintf(w, "fit at n=%d: predicted %.4gs, measured %.4gs\n", ns[last], pred, secs[last])
	}
}

// GridKey identifies one (model, topology) cell of the Figure-4 array.
type GridKey struct {
	Model    string
	Topology string
}

// ReportGrid renders Figure-4/5/6-style cells: for each (model, topology)
// pair, a table with one row per mean cardinality and one column per
// variability, cell values in seconds. Multi-pass cells (Figure 6 ripples)
// are flagged with a trailing *N (N = passes).
func ReportGrid(w io.Writer, title string, ms []Measurement) {
	type cellKey struct {
		mean, variability float64
	}
	groups := map[GridKey]map[cellKey]Measurement{}
	var keys []GridKey
	for _, m := range ms {
		k := GridKey{Topology: m.Case.Topology.String()}
		if m.Case.Model != nil {
			k.Model = m.Case.Model.Name()
		}
		if m.Case.Threshold > 0 {
			k.Topology += fmt.Sprintf(" th=%.3g", m.Case.Threshold)
		}
		if _, ok := groups[k]; !ok {
			groups[k] = map[cellKey]Measurement{}
			keys = append(keys, k)
		}
		groups[k][cellKey{m.Case.MeanCard, m.Case.Variability}] = m
	}
	fmt.Fprintln(w, title)
	for _, k := range keys {
		cells := groups[k]
		var means, vars []float64
		seenM := map[float64]bool{}
		seenV := map[float64]bool{}
		for ck := range cells {
			if !seenM[ck.mean] {
				seenM[ck.mean] = true
				means = append(means, ck.mean)
			}
			if !seenV[ck.variability] {
				seenV[ck.variability] = true
				vars = append(vars, ck.variability)
			}
		}
		sort.Float64s(means)
		sort.Float64s(vars)
		fmt.Fprintf(w, "\n[%s × %s]  seconds per optimization (rows: mean card; cols: variability)\n", k.Model, k.Topology)
		fmt.Fprintf(w, "%10s", "mean\\var")
		for _, v := range vars {
			fmt.Fprintf(w, "  %10.2f", v)
		}
		fmt.Fprintln(w)
		for _, mean := range means {
			fmt.Fprintf(w, "%10.3g", mean)
			for _, v := range vars {
				m, ok := cells[cellKey{mean, v}]
				switch {
				case !ok:
					fmt.Fprintf(w, "  %10s", "-")
				case m.Err != nil:
					fmt.Fprintf(w, "  %10s", "ERR")
				case m.Counters.Passes > 1:
					fmt.Fprintf(w, "  %8.4f*%d", m.Seconds, m.Counters.Passes)
				default:
					fmt.Fprintf(w, "  %10.4f", m.Seconds)
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// ReportCounts renders the §6.2 execution-count analysis for a set of
// measurements: κ″ evaluations against the analytic bounds (ln2/2)·n·2^n and
// 3^n, and κ′ against 2^n.
func ReportCounts(w io.Writer, ms []Measurement) {
	fmt.Fprintln(w, "κ″/κ′ execution counts vs the §6.2 analytic bounds")
	fmt.Fprintf(w, "%-48s %12s %12s %12s %12s %10s\n",
		"case", "κ″ evals", "(ln2/2)n2^n", "3^n splits", "κ′ evals", "passes")
	for _, m := range ms {
		if m.Err != nil {
			fmt.Fprintf(w, "%-48s ERROR %v\n", m.Case.Name, m.Err)
			continue
		}
		n := m.Case.N
		lower := math.Ln2 / 2 * float64(n) * math.Pow(2, float64(n))
		upper := math.Pow(3, float64(n))
		fmt.Fprintf(w, "%-48s %12d %12.0f %12.0f %12d %10d\n",
			m.Case.Name, m.Counters.KppEvals, lower, upper, m.Counters.KpEvals, m.Counters.Passes)
	}
}

// Speedup returns b/a — how many times faster a is than b — guarding
// against zero.
func Speedup(a, b float64) float64 {
	if a <= 0 {
		return math.Inf(1)
	}
	return b / a
}
