package server

import "sync"

// flightGroup is the request-coalescing primitive: at most one in-flight
// optimization per key, with any number of followers waiting on it. It is a
// minimal singleflight — followers share only the *event* of completion, not
// the leader's result: after the leader finishes, each follower re-issues
// its own Engine.Optimize, which the plan cache serves in microseconds,
// relabeled to the follower's own relation numbering. That keeps coalescing
// correct even when two isomorphic-but-differently-labeled queries share a
// canonical fingerprint, and keeps every response bit-identical to a cold
// run of the same request.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]chan struct{}
}

func (g *flightGroup) init() {
	g.m = make(map[string]chan struct{})
}

// join registers interest in key. The first caller becomes the leader
// (leader == true) and must call leave(key) when its optimization — success
// or failure — is done. Every other caller gets leader == false and a
// channel that closes when the leader leaves.
func (g *flightGroup) join(key string) (leader bool, wait <-chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ch, ok := g.m[key]; ok {
		return false, ch
	}
	ch := make(chan struct{})
	g.m[key] = ch
	return true, ch
}

// leave ends key's flight, releasing every follower. The next request for
// the same key starts a fresh flight (and normally hits the plan cache
// instead of optimizing).
func (g *flightGroup) leave(key string) {
	g.mu.Lock()
	ch := g.m[key]
	delete(g.m, key)
	g.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}
