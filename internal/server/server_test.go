package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blitzsplit"
	"blitzsplit/internal/faultinject"
)

// chainBody returns the JSON for an n-relation chain query. Distinct
// cardinalities keep different test queries on distinct canonical
// fingerprints, so tests never coalesce by accident.
func chainBody(n int, card float64) string {
	var b strings.Builder
	b.WriteString(`{"relations":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":"R%d","cardinality":%g}`, i, card)
	}
	b.WriteString(`],"joins":[`)
	for i := 0; i+1 < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"a":"R%d","b":"R%d","selectivity":0.001}`, i, i+1)
	}
	b.WriteString(`]}`)
	return b.String()
}

// withOpts splices extra top-level JSON fields into a chainBody document.
func withOpts(body, extra string) string {
	return body[:len(body)-1] + "," + extra + "}"
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postOptimize(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/optimize: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

func decodeResponse(t *testing.T, b []byte) OptimizeResponse {
	t.Helper()
	var r OptimizeResponse
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("invalid response JSON: %v\n%s", err, b)
	}
	return r
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOptimizeBasic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, b := postOptimize(t, ts.URL, chainBody(5, 1000))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	r := decodeResponse(t, b)
	if r.Mode != blitzsplit.ModeExhaustive || r.Degraded {
		t.Errorf("mode = %q degraded = %v, want exhaustive", r.Mode, r.Degraded)
	}
	if r.Cached || r.Coalesced {
		t.Errorf("cold request reported cached=%v coalesced=%v", r.Cached, r.Coalesced)
	}
	if r.Expression == "" || r.Cost <= 0 || r.Cardinality <= 0 {
		t.Errorf("degenerate response: %+v", r)
	}
	if r.Plan != nil {
		t.Error("plan included without include_plan")
	}

	// Same query again: a plan-cache hit, bit-identical.
	code, b = postOptimize(t, ts.URL, chainBody(5, 1000))
	if code != http.StatusOK {
		t.Fatalf("second status = %d: %s", code, b)
	}
	r2 := decodeResponse(t, b)
	if !r2.Cached {
		t.Error("second identical request must be a cache hit")
	}
	if r2.Cost != r.Cost || r2.Cardinality != r.Cardinality ||
		r2.Expression != r.Expression || r2.Counters != r.Counters {
		t.Errorf("cache hit not bit-identical:\ncold %+v\nhit  %+v", r, r2)
	}

	// include_plan returns the tree.
	code, b = postOptimize(t, ts.URL, withOpts(chainBody(5, 1000), `"include_plan":true`))
	if code != http.StatusOK {
		t.Fatalf("include_plan status = %d: %s", code, b)
	}
	if r3 := decodeResponse(t, b); r3.Plan == nil {
		t.Error("include_plan did not return a plan")
	}
	if got := s.met.requests(http.StatusOK).Value(); got != 3 {
		t.Errorf("requests{200} = %d, want 3", got)
	}
	if got := s.met.optimizations.Value(); got != 3 {
		t.Errorf("optimizations = %d, want 3 (cache hits still pass the leader path)", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRelations: 4})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{not json`, http.StatusBadRequest},
		{"unknown relation in join",
			`{"relations":[{"name":"A","cardinality":10}],"joins":[{"a":"A","b":"Z","selectivity":0.5}]}`,
			http.StatusBadRequest},
		{"too many relations", chainBody(5, 1000), http.StatusUnprocessableEntity},
		{"negative timeout", withOpts(chainBody(2, 10), `"timeout_ms":-5`), http.StatusBadRequest},
		{"unknown model", withOpts(chainBody(2, 10), `"model":"bogus"`), http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, b := postOptimize(t, ts.URL, c.body)
			if code != c.want {
				t.Fatalf("status = %d, want %d: %s", code, c.want, b)
			}
			var e errorResponse
			if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
				t.Errorf("error body not JSON with error field: %s", b)
			}
		})
	}

	// Method and body-size limits.
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
	_, small := newTestServer(t, Config{MaxBody: 64})
	code, b := postOptimize(t, small.URL, chainBody(6, 1000))
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413: %s", code, b)
	}
}

// A well-formed query whose every plan overflows the float32 cost limit is
// unanswerable as posed: 422, not 500.
func TestNoPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"relations":[{"name":"A","cardinality":1e30},{"name":"B","cardinality":1e30}],
	          "joins":[{"a":"A","b":"B","selectivity":1}]}`
	code, b := postOptimize(t, ts.URL, body)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", code, b)
	}
}

// TestCoalescingExact is the acceptance criterion for coalescing: K
// concurrent identical queries perform exactly one optimization; telemetry
// reports 1 optimization and K−1 coalesced waits; and all K responses are
// bit-identical to a cold run of the same request.
//
// The leader is held deterministically at the first degradation-ladder rung
// by a faultinject hook, the K−1 followers are observed coalescing via the
// telemetry counter, and only then is the leader released.
func TestCoalescingExact(t *testing.T) {
	const K = 8
	s, ts := newTestServer(t, Config{RequestTimeout: 30 * time.Second})
	body := chainBody(10, 1000)

	entered := make(chan struct{})
	gate := make(chan struct{})
	var enterOnce, gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	// Only the leader runs the ladder — followers wait for it and are then
	// served from the plan cache, which returns before any rung fires — so
	// the hook blocks exactly one request.
	faultinject.Set(faultinject.FacadeRung, func() {
		enterOnce.Do(func() { close(entered); <-gate })
	})
	defer faultinject.Reset()
	defer release()

	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, K)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			replies <- reply{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		replies <- reply{resp.StatusCode, b}
	}

	go post() // leader
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the ladder")
	}
	for i := 0; i < K-1; i++ {
		go post()
	}
	waitFor(t, 10*time.Second,
		func() bool { return s.met.coalesced.Value() == K-1 },
		"all followers to coalesce")
	release()

	var leaders, followers int
	var got []OptimizeResponse
	for i := 0; i < K; i++ {
		r := <-replies
		if r.code != http.StatusOK {
			t.Fatalf("status = %d: %s", r.code, r.body)
		}
		resp := decodeResponse(t, r.body)
		got = append(got, resp)
		if resp.Coalesced {
			followers++
			if !resp.Cached {
				t.Error("coalesced follower must be served from the plan cache")
			}
		} else {
			leaders++
		}
	}
	if leaders != 1 || followers != K-1 {
		t.Fatalf("leaders = %d followers = %d, want 1 and %d", leaders, followers, K-1)
	}
	if got := s.met.optimizations.Value(); got != 1 {
		t.Errorf("optimizations = %d, want exactly 1", got)
	}
	if got := s.met.coalesced.Value(); got != K-1 {
		t.Errorf("coalesced = %d, want exactly %d", got, K-1)
	}
	if got := s.met.requests(http.StatusOK).Value(); got != K {
		t.Errorf("requests{200} = %d, want %d", got, K)
	}

	// Bit-identical to a cold run: a fresh engine, same request, no hook.
	faultinject.Reset()
	_, cold := newTestServer(t, Config{})
	code, b := postOptimize(t, cold.URL, body)
	if code != http.StatusOK {
		t.Fatalf("cold run status = %d: %s", code, b)
	}
	want := decodeResponse(t, b)
	for i, r := range got {
		if r.Cost != want.Cost || r.Cardinality != want.Cardinality ||
			r.Expression != want.Expression || r.Counters != want.Counters {
			t.Errorf("response %d not bit-identical to cold run:\ngot  %+v\nwant %+v", i, r, want)
		}
	}
}

// With the only slot held and a short admission wait, the server sheds.
func TestAdmissionShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, AdmissionWait: 30 * time.Millisecond})
	s.inflight <- struct{}{} // occupy the only slot
	defer func() { <-s.inflight }()

	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		strings.NewReader(chainBody(3, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	if got := s.met.shed.Value(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
}

// Under overload the server degrades before it sheds: a request admitted at
// high occupancy runs with a shrunken deadline, and the deadline ladder
// answers with a cheaper rung instead of an error.
func TestOverloadDegrades(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, AdmissionWait: 10 * time.Second})
	s.inflight <- struct{}{} // saturate: the next request samples 100% occupancy
	go func() {
		time.Sleep(250 * time.Millisecond)
		<-s.inflight // free the slot so the request admits after sampling
	}()

	// A 20-relation chain cannot finish exhaustively inside the shrunken
	// deadline (1600 ms / 8 = 200 ms at full occupancy), so the ladder must
	// land on a cheaper rung — and still answer 200.
	code, b := postOptimize(t, ts.URL, withOpts(chainBody(20, 1000), `"timeout_ms":1600`))
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degrade, not shed): %s", code, b)
	}
	r := decodeResponse(t, b)
	if !r.Degraded || r.Mode == blitzsplit.ModeExhaustive {
		t.Fatalf("mode = %q degraded = %v, want a degraded rung", r.Mode, r.Degraded)
	}
	if got := s.met.degraded(r.Mode).Value(); got != 1 {
		t.Errorf("degraded{rung=%q} = %d, want 1", r.Mode, got)
	}
	if got := s.met.shed.Value(); got != 0 {
		t.Errorf("shed = %d, want 0 — degradation must come before shedding", got)
	}
}

func TestDrainRefusal(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", got)
	}
	s.BeginDrain()
	s.BeginDrain() // idempotent
	if !s.Draining() {
		t.Fatal("Draining() must report true")
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (process is still live)", got)
	}
	code, b := postOptimize(t, ts.URL, chainBody(3, 1000))
	if code != http.StatusServiceUnavailable {
		t.Errorf("optimize during drain = %d, want 503: %s", code, b)
	}
	if got := s.met.shed.Value(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if code, b := postOptimize(t, ts.URL, chainBody(4, 1000)); code != http.StatusOK {
		t.Fatalf("optimize status = %d: %s", code, b)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	out := string(b)
	for _, want := range []string{
		`blitzd_requests_total{code="200"} 1`,
		"blitzd_optimizations_total 1",
		"# TYPE blitzd_request_seconds histogram",
		"blitzd_inflight 0",
		"blitzd_plancache_misses_total 1",
		"blitzd_arena_live_tables 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	vb, _ := io.ReadAll(vresp.Body)
	var vars map[string]any
	if err := json.Unmarshal(vb, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, vb)
	}
	if got := vars["blitzd_inflight_limit"].(float64); got != float64(cap(s.inflight)) {
		t.Errorf("blitzd_inflight_limit = %v, want %d", got, cap(s.inflight))
	}
}

func TestOverloadDivisor(t *testing.T) {
	cases := []struct {
		used, capacity int
		want           time.Duration
	}{
		{0, 4, 1}, {1, 4, 1}, {2, 4, 2}, {3, 4, 4}, {4, 4, 8},
		{9, 10, 8}, {8, 10, 4}, {7, 10, 2}, {5, 10, 2}, {4, 10, 1},
		{1, 1, 8}, {0, 1, 1},
	}
	for _, c := range cases {
		if got := overloadDivisor(c.used, c.capacity); got != c.want {
			t.Errorf("overloadDivisor(%d, %d) = %d, want %d", c.used, c.capacity, got, c.want)
		}
	}
}

func TestEffectiveTimeout(t *testing.T) {
	s := New(Config{MaxInFlight: 4, RequestTimeout: 2 * time.Second, MaxTimeout: 10 * time.Second})
	if got := s.effectiveTimeout(&OptimizeRequest{}, 0); got != 2*time.Second {
		t.Errorf("default = %v, want 2s", got)
	}
	if got := s.effectiveTimeout(&OptimizeRequest{TimeoutMS: 500}, 0); got != 500*time.Millisecond {
		t.Errorf("client deadline = %v, want 500ms", got)
	}
	if got := s.effectiveTimeout(&OptimizeRequest{TimeoutMS: 60000}, 0); got != 10*time.Second {
		t.Errorf("capped deadline = %v, want MaxTimeout", got)
	}
	if got := s.effectiveTimeout(&OptimizeRequest{TimeoutMS: 800}, 2); got != 400*time.Millisecond {
		t.Errorf("half-load deadline = %v, want 400ms", got)
	}
	if got := s.effectiveTimeout(&OptimizeRequest{TimeoutMS: 4}, 4); got != time.Millisecond {
		t.Errorf("floor = %v, want 1ms", got)
	}
}

// TestServerStressCoalesce hammers one server from 8 goroutines with a small
// set of query shapes and asserts the global accounting identity: every
// request is either an optimization or a coalesced wait, nothing is shed,
// and the engine leaks no arena tables. Run under -race by `make stress`.
func TestServerStressCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 30 * time.Second})
	shapes := []string{
		chainBody(4, 1000), chainBody(5, 2000), chainBody(6, 3000), chainBody(7, 4000),
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
					strings.NewReader(shapes[(w+i)%len(shapes)]))
				if err != nil {
					errs <- err.Error()
					continue
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, b)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	const total = workers * per
	if got := s.met.requests(http.StatusOK).Value(); got != total {
		t.Errorf("requests{200} = %d, want %d", got, total)
	}
	if opt, co := s.met.optimizations.Value(), s.met.coalesced.Value(); opt+co != total {
		t.Errorf("optimizations (%d) + coalesced (%d) = %d, want %d", opt, co, opt+co, total)
	}
	if got := s.met.shed.Value(); got != 0 {
		t.Errorf("shed = %d, want 0", got)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after drain, want 0", got)
	}
	if live := s.eng.Stats().Arena.Live; live != 0 {
		t.Errorf("arena leak: %d live tables", live)
	}
}

// A server pinned to the CCP enumerator serves connected queries normally
// and answers disconnected ones with 422 — such a query has no
// Cartesian-product-free plan at all, which is a property of the request,
// not a server fault. Auto never 422s: it falls back to the blitz scan and
// must agree with a default server bit for bit.
func TestEnumeratorConfig(t *testing.T) {
	disconnected := `{"relations":[{"name":"A","cardinality":100},{"name":"B","cardinality":200},` +
		`{"name":"C","cardinality":300},{"name":"D","cardinality":400}],` +
		`"joins":[{"a":"A","b":"B","selectivity":0.01},{"a":"C","b":"D","selectivity":0.02}]}`

	_, ccp := newTestServer(t, Config{Enumerator: blitzsplit.EnumeratorCCP})
	code, body := postOptimize(t, ccp.URL, chainBody(6, 1000))
	if code != http.StatusOK {
		t.Fatalf("connected query on a CCP server: %d\n%s", code, body)
	}
	code, body = postOptimize(t, ccp.URL, disconnected)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("disconnected query on a CCP server: %d, want 422\n%s", code, body)
	}

	_, auto := newTestServer(t, Config{Enumerator: blitzsplit.EnumeratorAuto})
	code, body = postOptimize(t, auto.URL, disconnected)
	if code != http.StatusOK {
		t.Fatalf("disconnected query on an Auto server: %d\n%s", code, body)
	}
	got := decodeResponse(t, body)
	_, def := newTestServer(t, Config{})
	code, body = postOptimize(t, def.URL, disconnected)
	if code != http.StatusOK {
		t.Fatalf("disconnected query on a default server: %d\n%s", code, body)
	}
	want := decodeResponse(t, body)
	if got.Cost != want.Cost || got.Expression != want.Expression {
		t.Fatalf("Auto fallback diverged from the blitz default:\n%+v\nvs\n%+v", got, want)
	}
}
