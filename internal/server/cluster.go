package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"blitzsplit"
	"blitzsplit/internal/cluster"
	"blitzsplit/internal/retry"
	"blitzsplit/internal/telemetry"
)

// maxFillBody bounds a single /v1/peer/fill payload: one snapshot record
// plus framing. MaxSnapshotRecord in internal/plancache is 16 MiB; anything
// larger is not a record the loader would accept anyway.
const maxFillBody = 17 << 20

// clusterState is the sharded-serving layer attached to a Server when
// Config.NodeID/Peers are set: the consistent-hash ring, the peer client,
// and the blitzd_cluster_* counters. Membership is static for the life of
// the process — a change means new flags and a restart, with warm handoff
// (PullHandoff) moving the cache entries that changed owner.
type clusterState struct {
	self   cluster.Node
	ring   *cluster.Ring
	client *cluster.Client

	// wg tracks async peer work (cheap fills after forwards, push fills
	// after owner-failure fallbacks) so drain and tests can settle it.
	wg sync.WaitGroup
	// fillInFlight dedupes concurrent cheap fills per engine cache key.
	fillInFlight sync.Map

	// Counters, exposed as blitzd_cluster_* gauges and /v1/cluster/status.
	ownedLocal    atomic.Uint64 // requests this node owns
	received      atomic.Uint64 // forwarded requests served for peers
	warmLocal     atomic.Uint64 // peer-owned requests served from a warm local copy
	fallbackLocal atomic.Uint64 // peer-owned requests served locally (owner unreachable)
	fillFetched   atomic.Uint64 // plans pulled from owners after forwards
	fillPushed    atomic.Uint64 // plans pushed to owners after fallbacks
	fillReceived  atomic.Uint64 // entries loaded via /v1/peer/fill
	planServed    atomic.Uint64 // /v1/peer/plan hits answered
	planMissed    atomic.Uint64 // /v1/peer/plan misses answered
	handoffSent   atomic.Uint64 // entries streamed out via /v1/peer/handoff
	handoffLoaded atomic.Uint64 // entries loaded by PullHandoff

	mu          sync.Mutex
	forwarded   map[string]*atomic.Uint64 // by peer ID
	forwardErrs map[string]*atomic.Uint64
}

func newClusterState(s *Server, cfg Config) *clusterState {
	cs := &clusterState{
		ring:        cluster.NewRing(cfg.Peers, cfg.VirtualNodes),
		forwarded:   make(map[string]*atomic.Uint64),
		forwardErrs: make(map[string]*atomic.Uint64),
	}
	if self, ok := cs.ring.Lookup(cfg.NodeID); ok {
		cs.self = self
	} else {
		// A node absent from its own peer list owns nothing and forwards
		// everything — a misconfiguration cmd/blitzd refuses, but the server
		// stays well-defined if constructed this way directly.
		cs.self = cluster.Node{ID: cfg.NodeID}
	}
	// One attempt rides out a peer's brief shed; a dead peer must fail fast
	// into the local-fallback path, so forwards retry far less than an
	// offline bench client would.
	cs.client = cluster.NewClient(cfg.NodeID, cfg.MaxTimeout+5*time.Second)
	cs.client.Retry = retry.Policy{MaxAttempts: 2, Base: 50 * time.Millisecond, Cap: 250 * time.Millisecond}
	for _, n := range cs.ring.Nodes() {
		if n.ID == cs.self.ID {
			continue
		}
		cs.forwarded[n.ID] = new(atomic.Uint64)
		cs.forwardErrs[n.ID] = new(atomic.Uint64)
	}
	cs.register(cfg.Registry)
	return cs
}

// register publishes the cluster counters. Monotonic counters surface
// through GaugeFunc like the engine-level *_total series: the source of
// truth stays one set of atomics shared with /v1/cluster/status.
func (cs *clusterState) register(reg *telemetry.Registry) {
	gauge := func(name, labels, help string, v *atomic.Uint64) {
		reg.GaugeFunc(name, labels, help, func() float64 { return float64(v.Load()) })
	}
	reg.GaugeFunc("blitzd_cluster_nodes", "", "Static cluster membership size.",
		func() float64 { return float64(cs.ring.Size()) })
	gauge("blitzd_cluster_owned_local_total", "",
		"Optimize requests whose shape this node owns.", &cs.ownedLocal)
	gauge("blitzd_cluster_received_total", "",
		"Forwarded optimize requests served on behalf of peers.", &cs.received)
	gauge("blitzd_cluster_warm_local_total", "",
		"Peer-owned requests served from a warm local cache copy.", &cs.warmLocal)
	gauge("blitzd_cluster_fallback_local_total", "",
		"Peer-owned requests optimized locally because the owner was unreachable.", &cs.fallbackLocal)
	gauge("blitzd_cluster_fill_fetched_total", "",
		"Plans pulled from owners after forwarded requests (cheap fills).", &cs.fillFetched)
	gauge("blitzd_cluster_fill_pushed_total", "",
		"Plans pushed to owners after local fallbacks.", &cs.fillPushed)
	gauge("blitzd_cluster_fill_received_total", "",
		"Cache entries loaded from peer fill pushes.", &cs.fillReceived)
	gauge("blitzd_cluster_peer_plan_served_total", "",
		"Peer plan probes answered with an entry.", &cs.planServed)
	gauge("blitzd_cluster_peer_plan_missed_total", "",
		"Peer plan probes answered 404.", &cs.planMissed)
	gauge("blitzd_cluster_handoff_sent_entries_total", "",
		"Cache entries streamed to rejoining peers via warm handoff.", &cs.handoffSent)
	gauge("blitzd_cluster_handoff_loaded_entries_total", "",
		"Cache entries loaded from peers' warm handoffs.", &cs.handoffLoaded)
	for id, v := range cs.forwarded {
		gauge("blitzd_cluster_forwarded_total", `peer="`+id+`"`,
			"Optimize requests forwarded to their owning peer.", v)
	}
	for id, v := range cs.forwardErrs {
		gauge("blitzd_cluster_forward_errors_total", `peer="`+id+`"`,
			"Forward attempts that failed over to local serving.", v)
	}
}

// ClusterEnabled reports whether this server is part of a sharded cluster.
func (s *Server) ClusterEnabled() bool { return s.cluster != nil }

// ClusterSettle blocks until all async cluster work (cheap fills, push
// fills) has finished. Drain calls it so a terminating node does not abandon
// a plan push mid-flight; tests call it before asserting cache state.
func (s *Server) ClusterSettle() {
	if s.cluster != nil {
		s.cluster.wg.Wait()
	}
}

// clusterGo runs f on the cluster's tracked async pool with a panic
// boundary: background fills must never take the process down.
func (s *Server) clusterGo(f func()) {
	s.cluster.wg.Add(1)
	go func() {
		defer s.cluster.wg.Done()
		defer func() {
			if recover() != nil {
				s.handlerPanics.Add(1)
			}
		}()
		f()
	}()
}

// routeOptimize decides where a decoded /v1/optimize request is served.
//
//	routed true          — the owner's response has been relayed; done.
//	pushTo non-nil       — owner unreachable: caller serves locally, then
//	                       pushes the resulting plan to pushTo (ekey is the
//	                       engine cache key to export).
//	both zero            — serve locally (self-owned, already-forwarded,
//	                       or warm local copy).
func (s *Server) routeOptimize(w http.ResponseWriter, r *http.Request, req *OptimizeRequest, q *blitzsplit.Query, fp []byte) (routed bool, pushTo *cluster.Node, ekey []byte) {
	cs := s.cluster
	if r.Header.Get(cluster.HeaderForwarded) != "" {
		// One hop maximum: a forwarded request is served here no matter what
		// this node's ring says, so disagreeing rings can never loop.
		cs.received.Add(1)
		return false, nil, nil
	}
	owner := cs.ring.Owner(fp)
	if owner.ID == cs.self.ID || owner.ID == "" || owner.URL == "" {
		cs.ownedLocal.Add(1)
		return false, nil, nil
	}
	// The engine cache key decides warm-copy serving and names the entry in
	// every peer-fill exchange. PlanKey mirrors the serve path exactly.
	ekey, _, err := s.eng.PlanKey(q, s.serveOptions(req)...)
	if err != nil {
		// Cache disabled or an eligibility error the local spine will report
		// properly; routing has nothing to add.
		return false, nil, nil
	}
	if s.eng.HasPlan(ekey) {
		// A hot shape replicated here by an earlier cheap fill: serve the
		// warm copy without a network hop. The owner remains the coalescing
		// point for cold optimizations only.
		cs.warmLocal.Add(1)
		return false, nil, nil
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false, nil, nil
	}
	fresp, err := cs.client.Forward(r.Context(), owner, "/v1/optimize", "application/json", body)
	if err != nil {
		// Owner down or unreachable: availability beats placement. Serve
		// locally and push the plan to its home shard afterwards, so the
		// owner is warm when it returns.
		cs.forwardErrs[owner.ID].Add(1)
		cs.fallbackLocal.Add(1)
		return false, &owner, ekey
	}
	defer fresp.Body.Close()
	relay, err := io.ReadAll(fresp.Body)
	if err != nil || fresp.StatusCode == http.StatusServiceUnavailable {
		// Transport failure, or the owner is draining/shedding after the
		// client's retries ran out: both are owner failure from the caller's
		// point of view. Serve locally rather than relay the refusal.
		cs.forwardErrs[owner.ID].Add(1)
		cs.fallbackLocal.Add(1)
		return false, &owner, ekey
	}
	cs.forwarded[owner.ID].Add(1)
	for _, h := range []string{"Content-Type", "Retry-After", HeaderFingerprint} {
		if v := fresp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(fresp.StatusCode)
	_, _ = w.Write(relay)
	s.met.requests(fresp.StatusCode).Inc()
	if fresp.StatusCode == http.StatusOK {
		s.asyncFetchPlan(owner, ekey)
	}
	return true, nil, nil
}

// asyncFetchPlan pulls the (now cached) plan from the owner in the
// background — the cheap fill that lets hot shapes serve warm everywhere
// while cold shapes live only at their home shard. Concurrent fills for the
// same key collapse to one.
func (s *Server) asyncFetchPlan(owner cluster.Node, ekey []byte) {
	cs := s.cluster
	keyStr := string(ekey)
	if _, loaded := cs.fillInFlight.LoadOrStore(keyStr, struct{}{}); loaded {
		return
	}
	s.clusterGo(func() {
		defer cs.fillInFlight.Delete(keyStr)
		if s.eng.HasPlan(ekey) {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		stream, found, err := cs.client.FetchPlan(ctx, owner, hex.EncodeToString(ekey))
		if err != nil || !found {
			return
		}
		if _, err := s.eng.LoadSnapshot(bytes.NewReader(stream)); err == nil {
			cs.fillFetched.Add(1)
		}
	})
}

// asyncPushPlan exports the locally produced plan and pushes it to its
// owner — best-effort repair after an owner-unreachable fallback, so the
// shape's home shard is warm once the owner returns.
func (s *Server) asyncPushPlan(owner cluster.Node, ekey []byte) {
	cs := s.cluster
	s.clusterGo(func() {
		var buf bytes.Buffer
		ok, err := s.eng.ExportPlan(&buf, ekey)
		if err != nil || !ok {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cs.client.PushPlan(ctx, owner, buf.Bytes()); err == nil {
			cs.fillPushed.Add(1)
		}
	})
}

// handlePeerPlan answers GET /v1/peer/plan/<hex cache key> with a one-record
// snapshot stream of the entry, or 404 — the cheap-fill read side.
func (s *Server) handlePeerPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	key, err := hex.DecodeString(r.URL.Path[len(cluster.PeerPlanPath):])
	if err != nil {
		s.fail(w, http.StatusBadRequest, "malformed key: %v", err)
		return
	}
	var buf bytes.Buffer
	ok, err := s.eng.ExportPlan(&buf, key)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		s.cluster.planMissed.Add(1)
		s.fail(w, http.StatusNotFound, "plan not resident")
		return
	}
	s.cluster.planServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

// handlePeerFill accepts POST /v1/peer/fill: a snapshot stream (normally one
// record) loaded into the local cache. The loader's corruption tolerance
// applies — a damaged push shortens to nothing, never errors the server.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ls, err := s.eng.LoadSnapshot(io.LimitReader(r.Body, maxFillBody))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if ls.Loaded == 0 && ls.Rejected > 0 {
		// The loader swallows foreign bytes quietly (bad magic counts one
		// rejection and restores nothing); surface that to the pusher — a
		// misrouted or version-skewed payload should not look like success.
		s.fail(w, http.StatusBadRequest, "payload is not a loadable snapshot")
		return
	}
	s.cluster.fillReceived.Add(uint64(ls.Loaded))
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerHandoff streams every cache entry the ring assigns to the
// requesting node: GET /v1/peer/handoff?ring=<digest>&node=<id>. The digest
// must match this node's ring — entries filtered by a disagreeing ring would
// land on the wrong shard — and the requester must be a member.
func (s *Server) handlePeerHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	cs := s.cluster
	if ringD := r.URL.Query().Get("ring"); ringD != cs.ring.Digest() {
		s.fail(w, http.StatusConflict, "ring digest %q does not match %q", ringD, cs.ring.Digest())
		return
	}
	nodeID := r.URL.Query().Get("node")
	if _, ok := cs.ring.Lookup(nodeID); !ok {
		s.fail(w, http.StatusNotFound, "unknown node %q", nodeID)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	ws, err := s.eng.WriteSnapshotOwned(w, func(fp []byte) bool {
		return cs.ring.Owner(fp).ID == nodeID
	})
	if err == nil {
		cs.handoffSent.Add(uint64(ws.Entries))
	}
	// A mid-stream write error means the peer hung up; its loader treats the
	// truncated tail gracefully and nothing can be sent after the body
	// started, so the error is dropped here.
}

// PullHandoff asks every peer for the cache entries this node owns under the
// current ring — the warm side of a membership change. A freshly (re)started
// node calls it once at startup: what was cold restart becomes a warm join,
// with each surviving peer streaming over exactly the shapes that now belong
// here. Peers that are down or on a different ring are skipped (first such
// error is returned after all peers were tried); loading tolerates damaged
// streams per the snapshot codec.
func (s *Server) PullHandoff(ctx context.Context) (loaded int, err error) {
	cs := s.cluster
	if cs == nil {
		return 0, nil
	}
	var firstErr error
	for _, n := range cs.ring.Nodes() {
		if n.ID == cs.self.ID {
			continue
		}
		rc, err := cs.client.Handoff(ctx, n, cs.ring.Digest())
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ls, err := s.eng.LoadSnapshot(rc)
		rc.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		loaded += ls.Loaded
		cs.handoffLoaded.Add(uint64(ls.Loaded))
	}
	return loaded, firstErr
}

// ClusterStatus is the GET /v1/cluster/status body.
type ClusterStatus struct {
	Node  string       `json:"node"`
	Ring  string       `json:"ring"`
	Nodes []PeerStatus `json:"nodes"`

	OwnedLocal    uint64            `json:"owned_local"`
	Received      uint64            `json:"received"`
	WarmLocal     uint64            `json:"warm_local"`
	FallbackLocal uint64            `json:"fallback_local"`
	Forwarded     map[string]uint64 `json:"forwarded"`
	ForwardErrors map[string]uint64 `json:"forward_errors"`
	FillFetched   uint64            `json:"fill_fetched"`
	FillPushed    uint64            `json:"fill_pushed"`
	FillReceived  uint64            `json:"fill_received"`
	HandoffSent   uint64            `json:"handoff_sent_entries"`
	HandoffLoaded uint64            `json:"handoff_loaded_entries"`
}

// PeerStatus is one membership row of ClusterStatus.
type PeerStatus struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
}

// handleClusterStatus answers GET /v1/cluster/status with the node's view of
// the ring and its sharding counters.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	st := ClusterStatus{
		Node:          cs.self.ID,
		Ring:          cs.ring.Digest(),
		OwnedLocal:    cs.ownedLocal.Load(),
		Received:      cs.received.Load(),
		WarmLocal:     cs.warmLocal.Load(),
		FallbackLocal: cs.fallbackLocal.Load(),
		Forwarded:     make(map[string]uint64, len(cs.forwarded)),
		ForwardErrors: make(map[string]uint64, len(cs.forwardErrs)),
		FillFetched:   cs.fillFetched.Load(),
		FillPushed:    cs.fillPushed.Load(),
		FillReceived:  cs.fillReceived.Load(),
		HandoffSent:   cs.handoffSent.Load(),
		HandoffLoaded: cs.handoffLoaded.Load(),
	}
	for _, n := range cs.ring.Nodes() {
		st.Nodes = append(st.Nodes, PeerStatus{ID: n.ID, URL: n.URL, Self: n.ID == cs.self.ID})
	}
	for id, v := range cs.forwarded {
		st.Forwarded[id] = v.Load()
	}
	for id, v := range cs.forwardErrs {
		st.ForwardErrors[id] = v.Load()
	}
	s.writeJSON(w, http.StatusOK, st)
}
