package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"blitzsplit"
	"blitzsplit/internal/faultinject"
)

func postExecute(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/execute", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/execute: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

func decodeExecuteResponse(t *testing.T, b []byte) ExecuteResponse {
	t.Helper()
	var r ExecuteResponse
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("invalid execute response JSON: %v\n%s", err, b)
	}
	return r
}

// wantRows computes the ground-truth row count for a chainBody document by
// running the same synthesis and execution through the facade directly.
func wantRows(t *testing.T, n int, card float64, seed int64) int64 {
	t.Helper()
	q := blitzsplit.NewQuery()
	names := make([]string, n)
	for i := range names {
		names[i] = "R" + string(rune('0'+i))
		q.MustAddRelation(names[i], card)
	}
	for i := 0; i+1 < n; i++ {
		q.MustJoin(names[i], names[i+1], 0.001)
	}
	db, err := q.Synthesize(seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := blitzsplit.Execute(db, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return int64(rows)
}

// TestExecuteBasic: /v1/execute answers with the actual row count — matching
// an out-of-band run of the same synthesis — under the vectorized engine,
// the row-engine baseline, and every algorithm name, and the exec counters
// account for it exactly.
func TestExecuteBasic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := withOpts(chainBody(5, 1000), `"seed":7,"collect_ops":true`)
	want := wantRows(t, 5, 1000, 7)

	code, b := postExecute(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	r := decodeExecuteResponse(t, b)
	if r.Rows != want {
		t.Errorf("rows = %d, want %d", r.Rows, want)
	}
	if r.Exec.Rows != want || r.Exec.Joins != 4 || len(r.Exec.Ops) == 0 {
		t.Errorf("exec stats = %+v", r.Exec)
	}
	if r.Expression == "" || r.Mode != blitzsplit.ModeExhaustive || r.Plan != nil {
		t.Errorf("optimize summary degenerate: %+v", r)
	}

	// Same document on the row engine and under each algorithm: same rows.
	for _, extra := range []string{
		`"seed":7,"row_engine":true`,
		`"seed":7,"algorithm":"sortmerge"`,
		`"seed":7,"algorithm":"nestedloops"`,
	} {
		code, b := postExecute(t, ts.URL, withOpts(chainBody(5, 1000), extra))
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", extra, code, b)
		}
		if got := decodeExecuteResponse(t, b).Rows; got != want {
			t.Errorf("%s: rows = %d, want %d", extra, got, want)
		}
	}

	// include_plan returns the trees.
	code, b = postExecute(t, ts.URL, withOpts(chainBody(5, 1000), `"seed":7,"include_plan":true`))
	if code != http.StatusOK {
		t.Fatalf("include_plan status = %d: %s", code, b)
	}
	if r := decodeExecuteResponse(t, b); r.Plan == nil || r.ExecutedPlan == nil {
		t.Error("include_plan did not return plan and executed_plan")
	}

	// Exact accounting: 5 executions, each returning `want` rows, no reopts.
	if got := s.met.executions.Value(); got != 5 {
		t.Errorf("executions = %d, want 5", got)
	}
	if got := s.met.execRows.Value(); got != uint64(5*want) {
		t.Errorf("exec_rows = %d, want %d", got, 5*want)
	}
	if got := s.met.execReopts.Value(); got != 0 {
		t.Errorf("exec_reopts = %d, want 0", got)
	}
	if got := s.met.requests(http.StatusOK).Value(); got != 5 {
		t.Errorf("requests{200} = %d, want 5", got)
	}
	if got := s.Engine().Stats().Executions; got != 5 {
		t.Errorf("engine Executions = %d, want 5", got)
	}
}

// TestExecuteAdaptive: the adaptive driver over the server synthesizes data
// that matches its own estimates, so execution completes with the same rows
// and no spurious replans.
func TestExecuteAdaptive(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	want := wantRows(t, 5, 1000, 3)
	code, b := postExecute(t, ts.URL, withOpts(chainBody(5, 1000), `"seed":3,"adaptive":true`))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	r := decodeExecuteResponse(t, b)
	if r.Rows != want {
		t.Errorf("adaptive rows = %d, want %d", r.Rows, want)
	}
	if got := s.met.execReopts.Value(); got != uint64(len(r.Reopts)) {
		t.Errorf("exec_reopts = %d, response had %d", got, len(r.Reopts))
	}
}

// TestExecuteErrors: typed 422s for the execution guards, 400s for
// malformed execution options, 503 under drain.
func TestExecuteErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSynthRows: 3000})
	decodeErr := func(b []byte) errorResponse {
		var e errorResponse
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Fatalf("error body not JSON with error field: %s", b)
		}
		return e
	}

	// Synthesis admission: 4×1000 base rows over the 3000 cap.
	code, b := postExecute(t, ts.URL, chainBody(4, 1000))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("synthesis limit status = %d: %s", code, b)
	}
	if e := decodeErr(b); e.Kind != "synthesis_limit" {
		t.Errorf("kind = %q, want synthesis_limit", e.Kind)
	}

	// Row limit: selectivity 1 joins explode past max_rows.
	huge := `{"relations":[{"name":"A","cardinality":900},{"name":"B","cardinality":900}],` +
		`"joins":[{"a":"A","b":"B","selectivity":1}],"max_rows":1000}`
	code, b = postExecute(t, ts.URL, huge)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("row limit status = %d: %s", code, b)
	}
	if e := decodeErr(b); e.Kind != "row_limit" {
		t.Errorf("kind = %q, want row_limit", e.Kind)
	}
	if got := s.met.execRowLimit.Value(); got != 1 {
		t.Errorf("exec_row_limit = %d, want 1", got)
	}
	if got := s.met.executions.Value(); got != 0 {
		t.Errorf("executions after failures = %d, want 0", got)
	}

	for _, c := range []struct {
		name, body string
		want       int
	}{
		{"bad algorithm", withOpts(chainBody(2, 100), `"algorithm":"mergesort"`), http.StatusBadRequest},
		{"negative max_rows", withOpts(chainBody(2, 100), `"max_rows":-1`), http.StatusBadRequest},
		{"bad json", `{nope`, http.StatusBadRequest},
		{"unknown model", withOpts(chainBody(2, 100), `"model":"bogus"`), http.StatusBadRequest},
	} {
		code, b := postExecute(t, ts.URL, c.body)
		if code != c.want {
			t.Errorf("%s: status = %d, want %d: %s", c.name, code, c.want, b)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/execute")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	s.BeginDrain()
	if code, _ := postExecute(t, ts.URL, chainBody(2, 100)); code != http.StatusServiceUnavailable {
		t.Errorf("execute during drain = %d, want 503", code)
	}
}

// TestExecutePanicIsolation extends the panic-isolation contract to the
// executor: an injected exec panic answers 500, the server keeps serving,
// and the shape strikes toward the same quarantine the optimizer uses.
func TestExecutePanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{})
	body := withOpts(chainBody(5, 2000), `"seed":1`)

	faultinject.Set(faultinject.ExecRun, func() { panic("exec-chaos") })
	for i := 0; i < blitzsplit.DefaultQuarantineThreshold; i++ {
		code, b := postExecute(t, ts.URL, body)
		if code != http.StatusInternalServerError {
			t.Fatalf("strike %d: status = %d: %s", i+1, code, b)
		}
		if !strings.Contains(string(b), "exec-chaos") {
			t.Errorf("body %s does not surface the panic", b)
		}
	}
	// The shape is quarantined — refused before optimize or execute run —
	// even with the fault still armed.
	code, b := postExecute(t, ts.URL, body)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined status = %d, want 422: %s", code, b)
	}
	if !strings.Contains(string(b), "quarantined") {
		t.Errorf("body %s does not mention quarantine", b)
	}
	faultinject.Reset()

	if got := s.met.panics.Value(); got != uint64(blitzsplit.DefaultQuarantineThreshold) {
		t.Errorf("panics = %d, want %d", got, blitzsplit.DefaultQuarantineThreshold)
	}
	if got := s.Engine().Stats().PanicsRecovered; got != uint64(blitzsplit.DefaultQuarantineThreshold) {
		t.Errorf("PanicsRecovered = %d, want %d", got, blitzsplit.DefaultQuarantineThreshold)
	}
	// Unrelated documents still execute.
	if code, b := postExecute(t, ts.URL, withOpts(chainBody(4, 500), `"seed":2`)); code != http.StatusOK {
		t.Fatalf("unrelated document after quarantine: %d %s", code, b)
	}
}

// TestExecuteMetricsExposed: the exec series appear on /metrics with exact
// values after one successful execution.
func TestExecuteMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, b := postExecute(t, ts.URL, withOpts(chainBody(4, 800), `"seed":5`))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	rows := decodeExecuteResponse(t, b).Rows

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"blitzd_executions_total 1",
		fmt.Sprintf("blitzd_exec_rows_total %d", rows),
		"blitzd_exec_reopts_total 0",
		"blitzd_exec_row_limit_total 0",
		"blitzd_plan_downranks_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}
