package server

import (
	"strconv"
	"sync"

	"blitzsplit"
	"blitzsplit/internal/telemetry"
)

// metrics is the server's instrumentation, all under the blitzd_ namespace.
// Request/coalescing/shedding counters are exact (the handler tests assert
// them to the unit); engine, plan-cache, and arena state is exposed as
// gauges read from one Engine.Stats() snapshot per scrape rather than by
// poking cache or arena internals.
type metrics struct {
	reg           *telemetry.Registry
	latency       *telemetry.Histogram
	optimizations *telemetry.Counter
	coalesced     *telemetry.Counter
	shed          *telemetry.Counter
	panics        *telemetry.Counter
	executions    *telemetry.Counter
	execRows      *telemetry.Counter
	execReopts    *telemetry.Counter
	execRowLimit  *telemetry.Counter

	mu     sync.Mutex
	byCode map[int]*telemetry.Counter
	byRung map[string]*telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, s *Server) *metrics {
	m := &metrics{
		reg: reg,
		latency: reg.Histogram("blitzd_request_seconds", "",
			"Optimize-request latency, admission wait and coalesced waits included."),
		optimizations: reg.Counter("blitzd_optimizations_total", "",
			"Optimizations actually run (coalesced followers excluded)."),
		coalesced: reg.Counter("blitzd_coalesced_total", "",
			"Requests that waited on an identical in-flight optimization."),
		shed: reg.Counter("blitzd_shed_total", "",
			"Requests refused with 503 (admission timeout or draining)."),
		panics: reg.Counter("blitzd_panics_total", "",
			"Requests that failed on a recovered panic (engine or handler boundary)."),
		executions: reg.Counter("blitzd_executions_total", "",
			"Plans executed to completion on /v1/execute."),
		execRows: reg.Counter("blitzd_exec_rows_total", "",
			"Result rows produced by /v1/execute, cumulative."),
		execReopts: reg.Counter("blitzd_exec_reopts_total", "",
			"Adaptive mid-query re-optimization events observed during execution."),
		execRowLimit: reg.Counter("blitzd_exec_row_limit_total", "",
			"Executions refused because an intermediate result exceeded max_rows."),
		byCode: make(map[int]*telemetry.Counter),
		byRung: make(map[string]*telemetry.Counter),
	}
	reg.GaugeFunc("blitzd_inflight", "",
		"Admitted optimizations currently running.",
		func() float64 { return float64(s.InFlight()) })
	reg.GaugeFunc("blitzd_inflight_limit", "",
		"Admission-control in-flight capacity.",
		func() float64 { return float64(cap(s.inflight)) })
	reg.GaugeFunc("blitzd_draining", "",
		"1 once BeginDrain has flipped readiness, else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})

	// One Engine.Stats() snapshot per gauge read feeds every engine-level
	// series — telemetry reads the public snapshot, never cache or arena
	// internals.
	stat := func(pick func(st blitzsplit.EngineStats) float64) func() float64 {
		return func() float64 { return pick(s.eng.Stats()) }
	}
	reg.GaugeFunc("blitzd_plancache_hits_total", "", "Plan-cache hits.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Cache.Hits) }))
	reg.GaugeFunc("blitzd_plancache_misses_total", "", "Plan-cache misses.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Cache.Misses) }))
	reg.GaugeFunc("blitzd_plancache_entries", "", "Plan-cache resident entries.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Cache.Entries) }))
	reg.GaugeFunc("blitzd_plancache_bytes", "", "Plan-cache resident bytes.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Cache.Bytes) }))
	reg.GaugeFunc("blitzd_plancache_evictions_total", "", "Plan-cache LRU evictions.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Cache.Evictions) }))
	reg.GaugeFunc("blitzd_arena_live_tables", "", "DP tables currently checked out.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Arena.Live) }))
	reg.GaugeFunc("blitzd_arena_pooled_bytes", "", "Idle DP-table bytes pooled for reuse.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Arena.PooledBytes) }))
	reg.GaugeFunc("blitzd_arena_reuses_total", "", "Table checkouts served from the pool.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Arena.Reuses) }))
	reg.GaugeFunc("blitzd_panics_recovered_total", "",
		"Optimizer panics recovered at the engine boundary.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.PanicsRecovered) }))
	reg.GaugeFunc("blitzd_quarantined_shapes", "",
		"Query shapes quarantined after repeated optimizer panics.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.QuarantinedShapes) }))
	reg.GaugeFunc("blitzd_plan_downranks_total", "",
		"Cached plans demoted toward eviction after an adaptive replan proved their estimates stale.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.PlanDownranks) }))
	reg.GaugeFunc("blitzd_snapshot_age_seconds", "",
		"Seconds since the last successful plan-cache snapshot; -1 before the first.",
		func() float64 {
			st := s.eng.Stats()
			if st.LastSnapshot.At.IsZero() {
				return -1
			}
			return s.cfg.Now().Sub(st.LastSnapshot.At).Seconds()
		})
	reg.GaugeFunc("blitzd_snapshot_last_entries", "",
		"Plan-cache entries written by the last snapshot.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.LastSnapshot.Entries) }))
	reg.GaugeFunc("blitzd_snapshot_last_bytes", "",
		"Bytes written by the last snapshot.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.LastSnapshot.Bytes) }))
	reg.GaugeFunc("blitzd_snapshot_restored_entries", "",
		"Plan-cache entries restored at startup.",
		stat(func(st blitzsplit.EngineStats) float64 { return float64(st.Restore.Loaded) }))
	reg.GaugeFunc("blitzd_snapshot_restore_skipped", "",
		"Snapshot records dropped on restore (CRC or decode failures plus rejects).",
		stat(func(st blitzsplit.EngineStats) float64 {
			return float64(st.Restore.Skipped + st.Restore.Rejected)
		}))
	return m
}

// requests returns the per-status-code request counter, registering it on
// first use so only observed codes appear in the exposition.
func (m *metrics) requests(code int) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byCode[code]
	if !ok {
		c = m.reg.Counter("blitzd_requests_total",
			`code="`+strconv.Itoa(code)+`"`, "Optimize requests by HTTP status.")
		m.byCode[code] = c
	}
	return c
}

// degraded returns the per-rung degradation counter.
func (m *metrics) degraded(mode string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byRung[mode]
	if !ok {
		c = m.reg.Counter("blitzd_degraded_total",
			`rung="`+mode+`"`, "Responses degraded off the exhaustive rung, by winning rung.")
		m.byRung[mode] = c
	}
	return c
}
