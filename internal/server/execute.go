package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"blitzsplit"
	"blitzsplit/internal/core"
	"blitzsplit/internal/cost"
	"blitzsplit/internal/faultinject"
	"blitzsplit/internal/plan"
)

// ExecuteRequest is the POST /v1/execute body: the optimize request plus
// execution controls. The server synthesizes an in-memory database from the
// relation cardinalities and join selectivities (deterministically from
// seed), optimizes the query, and runs the winning plan on the vectorized
// columnar engine — so one request answers "how many rows does this query
// actually produce", not just "what plan would you pick".
type ExecuteRequest struct {
	OptimizeRequest
	// Seed drives the deterministic data synthesis; the same document and
	// seed always produce the same rows.
	Seed int64 `json:"seed,omitempty"`
	// Algorithm selects the physical join operator: "hash" (default),
	// "sortmerge", or "nestedloops".
	Algorithm string `json:"algorithm,omitempty"`
	// RowEngine runs the row-at-a-time executor instead of the vectorized
	// one — the differential baseline.
	RowEngine bool `json:"row_engine,omitempty"`
	// Adaptive enables mid-query re-optimization on cardinality
	// misestimates; see blitzsplit.ExecuteOptions.
	Adaptive bool `json:"adaptive,omitempty"`
	// MaxRows aborts execution once an intermediate result exceeds it
	// (answered 422, kind "row_limit"); 0 takes the engine default.
	MaxRows int `json:"max_rows,omitempty"`
	// CollectOps includes the per-operator breakdown in the response.
	CollectOps bool `json:"collect_ops,omitempty"`
}

// ExecuteResponse is the POST /v1/execute success body: the optimization
// summary plus what actually happened when the plan ran.
type ExecuteResponse struct {
	// Rows is the actual result cardinality; Cardinality remains the
	// optimizer's estimate of the same number.
	Rows        int64   `json:"rows"`
	Expression  string  `json:"expression"`
	Cost        float64 `json:"cost"`
	Cardinality float64 `json:"cardinality"`
	Mode        string  `json:"mode"`
	Degraded    bool    `json:"degraded"`
	Cached      bool    `json:"cached"`
	// Exec instruments the execution; Reopts lists adaptive replan events;
	// Downranked reports that a replan demoted the serving cache entry.
	Exec       blitzsplit.ExecStats    `json:"exec"`
	Reopts     []blitzsplit.ReoptEvent `json:"reopts,omitempty"`
	Downranked bool                    `json:"downranked,omitempty"`
	ElapsedUS  int64                   `json:"elapsed_us"`
	// Plan is the optimizer's tree, ExecutedPlan the tree that actually ran
	// (different only after an adaptive replan); both need include_plan.
	Plan         *plan.Node `json:"plan,omitempty"`
	ExecutedPlan *plan.Node `json:"executed_plan,omitempty"`
}

// handleExecute is the execute spine: decode → validate → admit →
// synthesize → optimize-and-execute → respond. Execution requests never
// coalesce — each synthesizes and runs its own data — but they pass the same
// admission gate as cold optimizations, and the plan cache still dedupes the
// optimization underneath. The same panic boundary as /v1/optimize applies.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.met.latency.Observe(s.cfg.Now().Sub(start)) }()
	defer func() {
		if v := recover(); v != nil {
			s.handlerPanics.Add(1)
			s.met.panics.Inc()
			s.fail(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	faultinject.Inject(faultinject.ServerRequest)

	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.met.shed.Inc()
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, code, err := s.decodeExecute(r)
	if err != nil {
		s.fail(w, code, "%v", err)
		return
	}
	// Synthesis admission: the request's data volume is the sum of its base
	// cardinalities, known before any work. Refusing here keeps one giant
	// document from tying the server up materializing tables.
	var synthRows float64
	for _, rel := range req.Relations {
		synthRows += rel.Cardinality
	}
	if synthRows > s.cfg.MaxSynthRows {
		s.failKind(w, http.StatusUnprocessableEntity, "synthesis_limit",
			"query synthesizes %.0f base rows, server limit is %.0f", synthRows, s.cfg.MaxSynthRows)
		return
	}

	q := blitzsplit.NewQuery()
	for _, rel := range req.Relations {
		if err := q.AddRelation(rel.Name, rel.Cardinality); err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	for _, j := range req.Joins {
		if err := q.Join(j.A, j.B, j.Selectivity); err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	options := []blitzsplit.Option{
		blitzsplit.WithDeadlineLadder(),
		blitzsplit.WithMemoryBudget(s.cfg.MemBudget),
		blitzsplit.WithEnumerator(s.cfg.Enumerator),
	}
	if req.Model != "" {
		options = append(options, blitzsplit.WithCostModel(req.Model))
	}
	if req.LeftDeep {
		options = append(options, blitzsplit.WithLeftDeep())
	}
	timeout := s.effectiveTimeout(&req.OptimizeRequest, len(s.inflight))

	if !s.admit(r.Context()) {
		s.met.shed.Inc()
		s.fail(w, http.StatusServiceUnavailable,
			"over capacity: %d optimizations in flight", s.cfg.MaxInFlight)
		return
	}
	defer func() { <-s.inflight }()
	s.met.optimizations.Inc()

	db, err := q.Synthesize(req.Seed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "synthesize: %v", err)
		return
	}
	options = append(options, blitzsplit.WithTimeout(timeout))
	er, err := s.eng.OptimizeAndExecute(r.Context(), q, db, blitzsplit.ExecuteOptions{
		Algorithm:  req.Algorithm,
		RowEngine:  req.RowEngine,
		Adaptive:   req.Adaptive,
		MaxRows:    req.MaxRows,
		CollectOps: req.CollectOps,
	}, options...)
	if err != nil {
		var ie *blitzsplit.InternalError
		if errors.As(err, &ie) {
			s.met.panics.Inc()
		}
		code, kind := http.StatusInternalServerError, ""
		switch {
		case errors.Is(err, blitzsplit.ErrRowLimit):
			// The data outgrew the execution guard: a property of the
			// request, typed so clients can raise max_rows deliberately.
			code, kind = http.StatusUnprocessableEntity, "row_limit"
			s.met.execRowLimit.Inc()
		case errors.Is(err, core.ErrNoPlan),
			errors.Is(err, blitzsplit.ErrEnumeratorUnsupported),
			errors.Is(err, blitzsplit.ErrQuarantined):
			code = http.StatusUnprocessableEntity
		case errors.Is(err, core.ErrBudgetExceeded):
			code = http.StatusServiceUnavailable
		}
		s.failKind(w, code, kind, "%v", err)
		return
	}
	if er.Degraded {
		s.met.degraded(er.Mode).Inc()
	}
	s.met.executions.Inc()
	s.met.execRows.Add(uint64(er.Rows))
	s.met.execReopts.Add(uint64(len(er.Reopts)))

	resp := ExecuteResponse{
		Rows:        er.Rows,
		Expression:  er.Expression(),
		Cost:        er.Cost,
		Cardinality: er.Cardinality,
		Mode:        er.Mode,
		Degraded:    er.Degraded,
		Cached:      er.Cached,
		Exec:        er.Exec,
		Reopts:      er.Reopts,
		Downranked:  er.Downranked,
		ElapsedUS:   s.cfg.Now().Sub(start).Microseconds(),
	}
	if req.IncludePlan {
		resp.Plan = er.Plan
		resp.ExecutedPlan = er.ExecutedPlan
	}
	s.met.requests(http.StatusOK).Inc()
	s.writeJSON(w, http.StatusOK, resp)
}

// decodeExecute mirrors decodeRequest for the execute body, adding the
// execution-only validations (join algorithm name, max_rows sign).
func (s *Server) decodeExecute(r *http.Request) (*ExecuteRequest, int, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if int64(len(body)) > s.cfg.MaxBody {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBody)
	}
	var req ExecuteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err)
	}
	if err := req.File.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if n := len(req.Relations); n > s.cfg.MaxRelations {
		return nil, http.StatusUnprocessableEntity,
			fmt.Errorf("%d relations exceeds the server limit of %d", n, s.cfg.MaxRelations)
	}
	if req.TimeoutMS < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("timeout_ms must be ≥ 0")
	}
	if req.Model != "" {
		if _, err := cost.ByName(req.Model); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	switch req.Algorithm {
	case "", "hash", "sortmerge", "sm", "nestedloops", "dnl", "naive":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown join algorithm %q", req.Algorithm)
	}
	if req.MaxRows < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("max_rows must be ≥ 0")
	}
	return &req, 0, nil
}
