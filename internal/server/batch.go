package server

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"blitzsplit"
	"blitzsplit/internal/cluster"
	"blitzsplit/internal/faultinject"
)

// MaxBatchQueries bounds one POST /v1/optimize/batch request.
const MaxBatchQueries = 256

// BatchRequest is the POST /v1/optimize/batch body: up to MaxBatchQueries
// independent optimize requests answered in one round trip. On a cluster the
// server groups the queries by owning shard and forwards each group to its
// owner as a sub-batch, so a mixed batch costs one hop per distinct owner
// instead of one per query.
type BatchRequest struct {
	Queries []OptimizeRequest `json:"queries"`
}

// BatchResult is one element of BatchResponse.Results, in request order:
// either a successful optimize response or an error with the HTTP status it
// would have carried as a single request.
type BatchResult struct {
	Result *OptimizeResponse `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
	Kind   string            `json:"kind,omitempty"`
	Code   int               `json:"code,omitempty"`
}

// BatchResponse is the POST /v1/optimize/batch success body. The HTTP status
// is 200 whenever the batch itself was processable; per-query failures are
// reported inline so one bad query never voids its neighbors.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// batchItem is one decoded query flowing through the batch spine.
type batchItem struct {
	idx   int
	req   *OptimizeRequest
	q     *blitzsplit.Query
	key   string // flight key
	fpHex string
}

// handleBatch is the batch spine: decode → validate each query → group by
// owning shard → serve local groups / forward remote groups concurrently →
// reassemble in request order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.met.latency.Observe(s.cfg.Now().Sub(start)) }()
	defer func() {
		if v := recover(); v != nil {
			s.handlerPanics.Add(1)
			s.met.panics.Inc()
			s.fail(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	faultinject.Inject(faultinject.ServerRequest)

	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.met.shed.Inc()
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBody {
		s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.cfg.MaxBody)
		return
	}
	var batch BatchRequest
	if err := json.Unmarshal(body, &batch); err != nil {
		s.fail(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(batch.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(batch.Queries) > MaxBatchQueries {
		s.fail(w, http.StatusUnprocessableEntity,
			"%d queries exceeds the batch limit of %d", len(batch.Queries), MaxBatchQueries)
		return
	}

	results := make([]BatchResult, len(batch.Queries))
	// Decode/validate every query up front; failures are inline results, and
	// the survivors are grouped by owner. "local" is keyed by the empty ID.
	groups := make(map[string][]batchItem)
	forwarded := r.Header.Get(cluster.HeaderForwarded) != ""
	if s.cluster != nil && forwarded {
		s.cluster.received.Add(1)
	}
	for i := range batch.Queries {
		req := &batch.Queries[i]
		if code, err := s.validateRequest(req); err != nil {
			results[i] = BatchResult{Error: err.Error(), Code: code}
			continue
		}
		q, cq, err := s.buildQuery(req)
		if err != nil {
			results[i] = BatchResult{Error: err.Error(), Code: http.StatusBadRequest}
			continue
		}
		key, fp := s.flightKey(cq, req)
		item := batchItem{idx: i, req: req, q: q, key: key, fpHex: hex.EncodeToString(fp)}
		ownerID := ""
		if s.cluster != nil && !forwarded {
			if owner := s.cluster.ring.Owner(fp); owner.ID != "" && owner.ID != s.cluster.self.ID && owner.URL != "" {
				ownerID = owner.ID
			}
		}
		groups[ownerID] = append(groups[ownerID], item)
	}

	// One goroutine per owner group: local queries run through the ordinary
	// spine (coalescing and admission apply per query), remote groups cost
	// one forwarded sub-batch each. Each goroutine carries its own panic
	// boundary — results must come back for every index.
	var wg sync.WaitGroup
	for ownerID, items := range groups {
		wg.Add(1)
		go func(ownerID string, items []batchItem) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					s.handlerPanics.Add(1)
					s.met.panics.Inc()
					for _, it := range items {
						if results[it.idx] == (BatchResult{}) {
							results[it.idx] = BatchResult{
								Error: fmt.Sprintf("internal error: %v", v),
								Code:  http.StatusInternalServerError,
							}
						}
					}
				}
			}()
			if ownerID == "" {
				s.serveBatchLocal(r, items, results)
				return
			}
			s.forwardBatch(r, ownerID, items, results)
		}(ownerID, items)
	}
	wg.Wait()

	s.met.requests(http.StatusOK).Inc()
	s.writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// serveBatchLocal runs a group of queries through the local spine
// sequentially, filling results at their original indices.
func (s *Server) serveBatchLocal(r *http.Request, items []batchItem, results []BatchResult) {
	for _, it := range items {
		qstart := s.cfg.Now()
		resp, serr := s.optimizeLocal(r.Context(), it.req, it.q, it.key, qstart)
		if serr != nil {
			results[it.idx] = BatchResult{Error: serr.msg, Kind: serr.kind, Code: serr.code}
			continue
		}
		resp.Fingerprint = it.fpHex
		results[it.idx] = BatchResult{Result: &resp}
	}
}

// forwardBatch sends one owner's group as a forwarded sub-batch and scatters
// the owner's results back to the original indices. Any transport failure
// fails the whole group over to local serving — availability beats
// placement, same as single-request routing (without the push-fill repair:
// a batch fallback may strand up to len(items) plans off-shard, which the
// next forwarded request per shape repairs via its cheap fill).
func (s *Server) forwardBatch(r *http.Request, ownerID string, items []batchItem, results []BatchResult) {
	cs := s.cluster
	owner, ok := cs.ring.Lookup(ownerID)
	if !ok {
		s.serveBatchLocal(r, items, results)
		return
	}
	sub := BatchRequest{Queries: make([]OptimizeRequest, len(items))}
	for i, it := range items {
		sub.Queries[i] = *it.req
	}
	body, err := json.Marshal(sub)
	if err != nil {
		s.serveBatchLocal(r, items, results)
		return
	}
	fresp, err := cs.client.Forward(r.Context(), owner, "/v1/optimize/batch", "application/json", body)
	if err != nil {
		cs.forwardErrs[ownerID].Add(1)
		cs.fallbackLocal.Add(uint64(len(items)))
		s.serveBatchLocal(r, items, results)
		return
	}
	defer fresp.Body.Close()
	relay, err := io.ReadAll(fresp.Body)
	if err != nil || fresp.StatusCode != http.StatusOK {
		cs.forwardErrs[ownerID].Add(1)
		cs.fallbackLocal.Add(uint64(len(items)))
		s.serveBatchLocal(r, items, results)
		return
	}
	var subResp BatchResponse
	if err := json.Unmarshal(relay, &subResp); err != nil || len(subResp.Results) != len(items) {
		cs.forwardErrs[ownerID].Add(1)
		s.serveBatchLocal(r, items, results)
		return
	}
	cs.forwarded[ownerID].Add(uint64(len(items)))
	for i, it := range items {
		results[it.idx] = subResp.Results[i]
	}
}
