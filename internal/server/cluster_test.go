package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"blitzsplit"
	"blitzsplit/internal/check"
	"blitzsplit/internal/cluster"
)

// testCluster is an in-process blitzd cluster: n Servers with one static
// membership, each behind a real TCP listener so forwards, fills, and
// handoffs travel over actual HTTP.
type testCluster struct {
	t     *testing.T
	peers []cluster.Node
	nodes []*testNode
}

type testNode struct {
	srv  *Server
	http *http.Server
	addr string
}

// startTestCluster binds n loopback listeners first — the membership must be
// known before any server is constructed — then starts every node.
func startTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		tc.peers = append(tc.peers, cluster.Node{
			ID:  fmt.Sprintf("n%d", i+1),
			URL: "http://" + ln.Addr().String(),
		})
	}
	tc.nodes = make([]*testNode, n)
	for i := 0; i < n; i++ {
		tc.nodes[i] = tc.serve(i, lns[i])
	}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			if nd != nil {
				nd.http.Close()
			}
		}
	})
	return tc
}

func (tc *testCluster) serve(i int, ln net.Listener) *testNode {
	s := New(Config{NodeID: tc.peers[i].ID, Peers: tc.peers})
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return &testNode{srv: s, http: hs, addr: ln.Addr().String()}
}

func (tc *testCluster) url(i int) string { return "http://" + tc.nodes[i].addr }

// kill stops node i's HTTP server, freeing its port; the Server value (and
// its cache) is discarded like a crashed process.
func (tc *testCluster) kill(i int) {
	tc.t.Helper()
	tc.nodes[i].http.Close()
	tc.nodes[i] = nil
}

// restart brings node i back on its original address with a fresh Server —
// an empty plan cache, as after a real crash without a snapshot file.
func (tc *testCluster) restart(i int) {
	tc.t.Helper()
	addr := strings.TrimPrefix(tc.peers[i].URL, "http://")
	var ln net.Listener
	var err error
	// The old listener's port can linger briefly after Close.
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tc.t.Fatalf("rebind %s: %v", addr, err)
	}
	tc.nodes[i] = tc.serve(i, ln)
}

// settle waits out every node's async cluster work (cheap fills, pushes).
func (tc *testCluster) settle() {
	for _, nd := range tc.nodes {
		if nd != nil {
			nd.srv.ClusterSettle()
		}
	}
}

// shapeFP computes the canonical fingerprint of chainBody(n, card) the same
// way the serving path does, without optimizing anything.
func shapeFP(t *testing.T, s *Server, n int, card float64) []byte {
	t.Helper()
	q := blitzsplit.NewQuery()
	for i := 0; i < n; i++ {
		if err := q.AddRelation(fmt.Sprintf("R%d", i), card); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if err := q.Join(fmt.Sprintf("R%d", i), fmt.Sprintf("R%d", i+1), 0.001); err != nil {
			t.Fatal(err)
		}
	}
	_, fp, err := s.eng.PlanKey(q, s.serveOptions(&OptimizeRequest{})...)
	if err != nil {
		t.Fatalf("PlanKey: %v", err)
	}
	return fp
}

// TestClusterForwardAgreement is the cluster-agreement acceptance test: the
// same query posted to every node must come back bit-identical — same
// expression, cost, cardinality, and fingerprint — regardless of which node
// owns it, and each shape must cold-optimize exactly once cluster-wide.
func TestClusterForwardAgreement(t *testing.T) {
	tc := startTestCluster(t, 3)
	const shapes = 8
	for sh := 0; sh < shapes; sh++ {
		body := chainBody(5, float64(1000+sh*111))
		var answers []check.ClusterAnswer
		for i := 0; i < 3; i++ {
			code, b := postOptimize(t, tc.url(i), body)
			if code != http.StatusOK {
				t.Fatalf("shape %d node %d: status %d: %s", sh, i, code, b)
			}
			r := decodeResponse(t, b)
			answers = append(answers, check.ClusterAnswer{
				Node:        tc.peers[i].ID,
				Expression:  r.Expression,
				Cost:        r.Cost,
				Cardinality: r.Cardinality,
				Fingerprint: r.Fingerprint,
			})
		}
		if err := check.ClusterAgree(answers); err != nil {
			t.Fatalf("shape %d: %v", sh, err)
		}
	}
	tc.settle()
	// Every shape has one home shard, so across the whole cluster each shape
	// missed the cache exactly once (the owner's cold run); every other
	// serve was a hit, a forward, or a warm copy.
	var misses uint64
	for _, nd := range tc.nodes {
		misses += nd.srv.eng.Stats().Cache.Misses
	}
	if misses != shapes {
		t.Errorf("cluster-wide cache misses = %d, want exactly %d (one cold run per shape)", misses, shapes)
	}
}

// TestClusterWarmCopyServesLocally verifies the cheap fill: after a forward,
// the non-owner pulls the plan in the background and serves the next request
// for that shape from its warm local copy with no second hop.
func TestClusterWarmCopyServesLocally(t *testing.T) {
	tc := startTestCluster(t, 2)
	// Find a shape node 0 does NOT own, so its first request forwards.
	var body string
	for card := 1000.0; ; card += 77 {
		fp := shapeFP(t, tc.nodes[0].srv, 5, card)
		if owner := tc.nodes[0].srv.cluster.ring.Owner(fp); owner.ID != "n1" {
			body = chainBody(5, card)
			break
		}
	}
	if code, b := postOptimize(t, tc.url(0), body); code != http.StatusOK {
		t.Fatalf("forwarded request failed: %d: %s", code, b)
	}
	tc.settle()
	if got := tc.nodes[0].srv.cluster.fillFetched.Load(); got != 1 {
		t.Fatalf("fill_fetched = %d after forwarded request, want 1", got)
	}
	warmBefore := tc.nodes[0].srv.cluster.warmLocal.Load()
	code, b := postOptimize(t, tc.url(0), body)
	if code != http.StatusOK {
		t.Fatalf("second request: %d: %s", code, b)
	}
	if r := decodeResponse(t, b); !r.Cached {
		t.Fatalf("second request not served from cache: %+v", r)
	}
	if got := tc.nodes[0].srv.cluster.warmLocal.Load(); got != warmBefore+1 {
		t.Fatalf("warm_local = %d, want %d: second request did not serve the warm copy", got, warmBefore+1)
	}
}

// TestClusterForwardedHeaderStopsHere verifies loop prevention: a request
// already marked forwarded is served locally even by a non-owner.
func TestClusterForwardedHeaderStopsHere(t *testing.T) {
	tc := startTestCluster(t, 2)
	var body string
	for card := 1000.0; ; card += 77 {
		fp := shapeFP(t, tc.nodes[0].srv, 5, card)
		if tc.nodes[0].srv.cluster.ring.Owner(fp).ID != "n1" {
			body = chainBody(5, card)
			break
		}
	}
	req, _ := http.NewRequest(http.MethodPost, tc.url(0)+"/v1/optimize", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "tester")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := tc.nodes[0].srv.cluster.received.Load(); got != 1 {
		t.Fatalf("received = %d, want 1", got)
	}
	if fwd := tc.nodes[0].srv.cluster.forwarded["n2"].Load(); fwd != 0 {
		t.Fatalf("marked request was forwarded on (%d hops) — loop prevention broken", fwd)
	}
}

// TestClusterOwnerDownFallback kills the owner and requires the non-owner to
// answer anyway (local optimization) and to queue a push fill toward the
// dead owner without failing the request.
func TestClusterOwnerDownFallback(t *testing.T) {
	tc := startTestCluster(t, 2)
	var body string
	for card := 1000.0; ; card += 77 {
		fp := shapeFP(t, tc.nodes[0].srv, 5, card)
		if tc.nodes[0].srv.cluster.ring.Owner(fp).ID == "n2" {
			body = chainBody(5, card)
			break
		}
	}
	tc.kill(1)
	code, b := postOptimize(t, tc.url(0), body)
	if code != http.StatusOK {
		t.Fatalf("request with dead owner: %d: %s", code, b)
	}
	r := decodeResponse(t, b)
	if r.Degraded {
		t.Fatalf("fallback degraded unexpectedly: %+v", r)
	}
	s := tc.nodes[0].srv
	if got := s.cluster.fallbackLocal.Load(); got != 1 {
		t.Fatalf("fallback_local = %d, want 1", got)
	}
	tc.settle() // push fill fails against the dead peer; must not hang or panic
	// The plan is resident locally, so the shape keeps serving warm.
	if code, b := postOptimize(t, tc.url(0), body); code != http.StatusOK || !decodeResponse(t, b).Cached {
		t.Fatalf("follow-up after fallback: code %d, body %s", code, b)
	}
}

// TestClusterPushFillReachesOwner verifies the other half of owner-failure
// repair: when the owner comes back before the push, the pushed entry lands
// in the owner's cache and serves as a hit there.
func TestClusterPushFillReachesOwner(t *testing.T) {
	tc := startTestCluster(t, 2)
	var body string
	var fp []byte
	for card := 1000.0; ; card += 77 {
		fp = shapeFP(t, tc.nodes[0].srv, 5, card)
		if tc.nodes[0].srv.cluster.ring.Owner(fp).ID == "n2" {
			body = chainBody(5, card)
			break
		}
	}
	// Make n2 unreachable from n1's forward by draining it: it answers 503
	// until the client's retries run out, forcing the local fallback, but the
	// fill endpoints still work... a drain refuses optimize only.
	tc.nodes[1].srv.BeginDrain()
	code, b := postOptimize(t, tc.url(0), body)
	if code != http.StatusOK {
		t.Fatalf("request with draining owner: %d: %s", code, b)
	}
	tc.settle()
	if got := tc.nodes[0].srv.cluster.fillPushed.Load(); got != 1 {
		t.Fatalf("fill_pushed = %d, want 1", got)
	}
	if got := tc.nodes[1].srv.cluster.fillReceived.Load(); got != 1 {
		t.Fatalf("owner fill_received = %d, want 1", got)
	}
}

// TestClusterBatch posts a mixed-owner batch and requires per-query results
// in request order, each carrying its fingerprint and agreeing exactly with
// a later single request for the same query.
func TestClusterBatch(t *testing.T) {
	tc := startTestCluster(t, 3)
	const k = 6
	var queries []json.RawMessage
	for i := 0; i < k; i++ {
		queries = append(queries, json.RawMessage(chainBody(5, float64(2000+i*131))))
	}
	batchBody, _ := json.Marshal(map[string]any{"queries": queries})
	resp, err := http.Post(tc.url(0)+"/v1/optimize/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("batch response: %v\n%s", err, raw)
	}
	if len(br.Results) != k {
		t.Fatalf("got %d results for %d queries", len(br.Results), k)
	}
	for i, res := range br.Results {
		if res.Result == nil {
			t.Fatalf("query %d failed: %s (code %d)", i, res.Error, res.Code)
		}
		// The individual request must agree exactly with the batch result.
		code, b := postOptimize(t, tc.url(0), string(queries[i]))
		if code != http.StatusOK {
			t.Fatalf("single query %d: %d: %s", i, code, b)
		}
		single := decodeResponse(t, b)
		if single.Expression != res.Result.Expression || single.Cost != res.Result.Cost ||
			single.Fingerprint != res.Result.Fingerprint {
			t.Fatalf("query %d: batch result %+v disagrees with single %+v", i, *res.Result, single)
		}
	}
}

// TestBatchValidationAndOrdering checks per-query error isolation: a batch
// mixing valid and invalid queries answers 200 with inline errors at the
// right indices.
func TestBatchValidationAndOrdering(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"queries":[` + chainBody(4, 500) + `,{"relations":[]},` + chainBody(3, 700) + `]}`
	resp, err := http.Post(ts.URL+"/v1/optimize/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("%d results", len(br.Results))
	}
	if br.Results[0].Result == nil || br.Results[2].Result == nil {
		t.Fatalf("valid queries failed: %+v", br.Results)
	}
	if br.Results[1].Result != nil || br.Results[1].Code == 0 {
		t.Fatalf("invalid query did not fail inline: %+v", br.Results[1])
	}
}

// TestClusterStatusEndpoint sanity-checks /v1/cluster/status and the
// blitzd_cluster_* exposition after some traffic.
func TestClusterStatusEndpoint(t *testing.T) {
	tc := startTestCluster(t, 2)
	for i := 0; i < 6; i++ {
		if code, b := postOptimize(t, tc.url(0), chainBody(5, float64(900+i*101))); code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, code, b)
		}
	}
	resp, err := http.Get(tc.url(0) + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "n1" || len(st.Nodes) != 2 || st.Ring == "" {
		t.Fatalf("status = %+v", st)
	}
	if st.OwnedLocal+st.Forwarded["n2"] == 0 {
		t.Fatalf("no traffic accounted: %+v", st)
	}
	mresp, err := http.Get(tc.url(0) + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"blitzd_cluster_nodes", "blitzd_cluster_forwarded_total", "blitzd_cluster_owned_local_total"} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestClusterHandoffGuards covers the peer-protocol rejections: a handoff
// with a stale ring digest is refused 409, an unknown requester 404, and a
// garbage fill push 400 — without disturbing the cache.
func TestClusterHandoffGuards(t *testing.T) {
	tc := startTestCluster(t, 2)
	get := func(path string) int {
		resp, err := http.Get(tc.url(0) + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	ring := tc.nodes[0].srv.cluster.ring.Digest()
	if code := get(cluster.PeerHandoffPath + "?ring=stale&node=n2"); code != http.StatusConflict {
		t.Fatalf("stale ring: %d, want 409", code)
	}
	if code := get(cluster.PeerHandoffPath + "?ring=" + ring + "&node=intruder"); code != http.StatusNotFound {
		t.Fatalf("unknown node: %d, want 404", code)
	}
	if code := get(cluster.PeerHandoffPath + "?ring=" + ring + "&node=n2"); code != http.StatusOK {
		t.Fatalf("valid handoff: %d, want 200", code)
	}
	if code := get(cluster.PeerPlanPath + "zz-not-hex"); code != http.StatusBadRequest {
		t.Fatalf("bad key: %d, want 400", code)
	}
	if code := get(cluster.PeerPlanPath + hex.EncodeToString([]byte("absent"))); code != http.StatusNotFound {
		t.Fatalf("absent key: %d, want 404", code)
	}
	resp, err := http.Post(tc.url(0)+cluster.PeerFillPath, "application/octet-stream",
		strings.NewReader("this is not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage fill: %d, want 400", resp.StatusCode)
	}
}

// TestClusterSmoke is the cluster smoke gate (make cluster-smoke): a 3-node
// cluster serves a shape pool, loses a node, keeps answering everything
// through reroute/fallback, and the node rejoins cold but pulls a warm
// handoff that serves ≥90% of its owned shapes as cache hits.
func TestClusterSmoke(t *testing.T) {
	tc := startTestCluster(t, 3)
	const shapes = 30
	bodies := make([]string, shapes)
	for i := range bodies {
		bodies[i] = chainBody(5, float64(1000+i*97))
	}
	// Phase 1: populate through node 0; ownership spreads over the ring.
	for i, body := range bodies {
		if code, b := postOptimize(t, tc.url(0), body); code != http.StatusOK {
			t.Fatalf("populate %d: %d: %s", i, code, b)
		}
	}
	tc.settle()

	// Phase 2: kill n3. Everything must still answer through the survivors —
	// warm copies where fills already replicated, local fallback otherwise —
	// including a never-seen shape owned by the dead node.
	tc.kill(2)
	for i, body := range bodies {
		if code, b := postOptimize(t, tc.url(0), body); code != http.StatusOK {
			t.Fatalf("reroute %d with n3 dead: %d: %s", i, code, b)
		}
	}
	fresh := ""
	for card := 50000.0; ; card += 97 {
		fp := shapeFP(t, tc.nodes[0].srv, 5, card)
		if tc.nodes[0].srv.cluster.ring.Owner(fp).ID == "n3" {
			fresh = chainBody(5, card)
			break
		}
	}
	if code, b := postOptimize(t, tc.url(0), fresh); code != http.StatusOK {
		t.Fatalf("fresh shape with dead owner: %d: %s", code, b)
	}
	if got := tc.nodes[0].srv.cluster.fallbackLocal.Load(); got == 0 {
		t.Fatal("dead owner never triggered a local fallback")
	}
	tc.settle()

	// Phase 3: n3 rejoins with an empty cache and pulls the warm handoff.
	tc.restart(2)
	n3 := tc.nodes[2].srv
	loaded, err := n3.PullHandoff(context.Background())
	if err != nil {
		t.Fatalf("PullHandoff: %v (loaded %d)", err, loaded)
	}
	if loaded == 0 {
		t.Fatal("handoff loaded nothing")
	}
	// Every shape n3 owns must now serve warm. ≥90% is the acceptance bar;
	// in this deterministic setup the expectation is 100%.
	owned, warm := 0, 0
	for i, body := range bodies {
		fp := shapeFP(t, n3, 5, float64(1000+i*97))
		if n3.cluster.ring.Owner(fp).ID != "n3" {
			continue
		}
		owned++
		code, b := postOptimize(t, tc.url(2), body)
		if code != http.StatusOK {
			t.Fatalf("rejoined node, shape %d: %d: %s", i, code, b)
		}
		if decodeResponse(t, b).Cached {
			warm++
		}
	}
	if owned == 0 {
		t.Fatal("rejoined node owns no shapes — pool too small for the ring")
	}
	if warm*10 < owned*9 {
		t.Fatalf("warm-handoff hit rate %d/%d < 90%%", warm, owned)
	}
	t.Logf("cluster smoke: rejoined node served %d/%d owned shapes warm after handoff of %d entries",
		warm, owned, loaded)
}

// TestDrainRetryAfter locks in the drain contract on every serving endpoint:
// a draining node answers 503 with Retry-After so cluster peers and clients
// know to back off briefly and retry elsewhere.
func TestDrainRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	for _, ep := range []struct{ path, body string }{
		{"/v1/optimize", chainBody(4, 100)},
		{"/v1/execute", chainBody(4, 100)},
		{"/v1/optimize/batch", `{"queries":[` + chainBody(4, 100) + `]}`},
	} {
		resp, err := http.Post(ts.URL+ep.path, "application/json", strings.NewReader(ep.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: %d, want 503", ep.path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Errorf("%s drain 503 Retry-After = %q, want \"1\"", ep.path, ra)
		}
	}
}

// TestFingerprintStableUnderRenumbering is the satellite-2 contract: the
// fingerprint in the response (and HeaderFingerprint) identifies the query
// shape, so relabeling and reordering relations must not change it, and a
// genuinely different query must.
func TestFingerprintStableUnderRenumbering(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The same 4-chain 100—200—300—400, twice: different names, relations
	// and joins listed in different orders.
	a := `{"relations":[{"name":"A","cardinality":100},{"name":"B","cardinality":200},` +
		`{"name":"C","cardinality":300},{"name":"D","cardinality":400}],` +
		`"joins":[{"a":"A","b":"B","selectivity":0.001},{"a":"B","b":"C","selectivity":0.001},` +
		`{"a":"C","b":"D","selectivity":0.001}]}`
	b := `{"relations":[{"name":"w","cardinality":400},{"name":"x","cardinality":300},` +
		`{"name":"y","cardinality":200},{"name":"z","cardinality":100}],` +
		`"joins":[{"a":"x","b":"w","selectivity":0.001},{"a":"y","b":"x","selectivity":0.001},` +
		`{"a":"z","b":"y","selectivity":0.001}]}`
	get := func(body string) (OptimizeResponse, string) {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		return decodeResponse(t, raw), resp.Header.Get(HeaderFingerprint)
	}
	ra, ha := get(a)
	rb, hb := get(b)
	if ra.Fingerprint == "" || ra.Fingerprint != ha {
		t.Fatalf("fingerprint body %q vs header %q", ra.Fingerprint, ha)
	}
	if ra.Fingerprint != rb.Fingerprint || ha != hb {
		t.Fatalf("renumbered query changed fingerprint: %q vs %q", ra.Fingerprint, rb.Fingerprint)
	}
	if !rb.Cached {
		t.Errorf("renumbered query missed the cache despite identical fingerprint")
	}
	rc, _ := get(chainBody(4, 5000))
	if rc.Fingerprint == ra.Fingerprint {
		t.Fatal("distinct query shares a fingerprint")
	}
}
