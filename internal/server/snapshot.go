package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"blitzsplit"
	"blitzsplit/internal/snapshot"
)

// DefaultSnapshotInterval is the periodic snapshot cadence when
// Config.SnapshotInterval is zero.
const DefaultSnapshotInterval = 30 * time.Second

// ErrNoSnapshotPath is returned by the snapshot operations when the server
// was configured without one.
var ErrNoSnapshotPath = errors.New("server: no snapshot path configured")

// SnapshotNow writes the engine's plan cache to Config.SnapshotPath
// atomically: a crash mid-write leaves the previous snapshot whole. Safe to
// call concurrently with serving traffic and with the periodic loop (the
// rename step serializes through the filesystem; the last writer wins with a
// complete file either way).
func (s *Server) SnapshotNow() (blitzsplit.SnapshotWriteStats, error) {
	if s.cfg.SnapshotPath == "" {
		return blitzsplit.SnapshotWriteStats{}, ErrNoSnapshotPath
	}
	var ws blitzsplit.SnapshotWriteStats
	err := snapshot.Write(s.cfg.SnapshotPath, func(w io.Writer) error {
		var werr error
		ws, werr = s.eng.WriteSnapshot(w)
		return werr
	})
	if err != nil {
		return blitzsplit.SnapshotWriteStats{}, err
	}
	return ws, nil
}

// RestoreSnapshot loads Config.SnapshotPath into the engine's plan cache. A
// missing file is a clean cold start (zero stats, nil error); a corrupt file
// restores what survives — the returned LoadStats says what was skipped. Only
// an unreadable file (permissions, I/O) is an error, and even then the server
// can serve cold. Stale temp files from a crashed writer are swept first.
func (s *Server) RestoreSnapshot() (blitzsplit.SnapshotLoadStats, error) {
	if s.cfg.SnapshotPath == "" {
		return blitzsplit.SnapshotLoadStats{}, ErrNoSnapshotPath
	}
	snapshot.CleanStale(s.cfg.SnapshotPath)
	f, err := os.Open(s.cfg.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		return blitzsplit.SnapshotLoadStats{}, nil
	}
	if err != nil {
		return blitzsplit.SnapshotLoadStats{}, fmt.Errorf("server: open snapshot: %w", err)
	}
	defer f.Close()
	return s.eng.LoadSnapshot(f)
}

// StartSnapshots launches the periodic snapshot loop (no-op without a
// snapshot path). The returned stop function halts the loop and waits for
// any in-progress write; it does not take a final snapshot — cmd/blitzd does
// that explicitly after drain, when the cache has stopped changing.
func (s *Server) StartSnapshots(onErr func(error)) (stop func()) {
	if s.cfg.SnapshotPath == "" {
		return func() {}
	}
	interval := s.cfg.SnapshotInterval
	if interval <= 0 {
		interval = DefaultSnapshotInterval
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapStop != nil {
		return s.stopSnapshots // already running; stopping is idempotent
	}
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	go func(stopc chan struct{}, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := s.SnapshotNow(); err != nil && onErr != nil {
					// A failed periodic snapshot is survivable — the previous
					// file is intact — so log and keep ticking.
					onErr(err)
				}
			case <-stopc:
				return
			}
		}
	}(s.snapStop, s.snapDone)
	return s.stopSnapshots
}

// stopSnapshots halts the periodic loop, waiting for it to exit. Idempotent.
func (s *Server) stopSnapshots() {
	s.snapMu.Lock()
	stopc, done := s.snapStop, s.snapDone
	s.snapStop, s.snapDone = nil, nil
	s.snapMu.Unlock()
	if stopc == nil {
		return
	}
	close(stopc)
	<-done
}

// HandlerPanics reports panics recovered at the HTTP handler boundary.
func (s *Server) HandlerPanics() uint64 { return s.handlerPanics.Load() }
