// Package server is the network serving subsystem: an HTTP/JSON facade over
// the blitzsplit Engine with request coalescing, admission control, and
// graceful drain.
//
// Three mechanisms keep it standing under heavy traffic:
//
//   - Coalescing: concurrent identical queries singleflight on the canonical
//     fingerprint (internal/canon). One leader pays the cold optimization;
//     every follower waits for it and is then served from the plan cache in
//     microseconds — N callers, one 3^n search.
//
//   - Admission control: cold optimizations pass through a bounded in-flight
//     semaphore, and every request carries a memory budget tied to the
//     engine's table arena. As occupancy rises the effective deadline
//     shrinks, which — mapped onto WithDeadlineLadder — degrades responses
//     through cheaper rungs (threshold → IDP → greedy) before the server
//     finally sheds load with 503. A degraded-but-fast plan beats a refusal:
//     even cardinality-free plans are usually serviceable.
//
//   - Drain: BeginDrain flips /readyz to 503 so load balancers stop routing
//     here, while in-flight requests run to completion; cmd/blitzd wires it
//     to SIGTERM ahead of http.Server.Shutdown.
//
// Endpoints: POST /v1/optimize, POST /v1/execute (optimize, synthesize, and
// run the plan on the vectorized engine — see execute.go), GET /metrics
// (Prometheus text exposition), GET /debug/vars (JSON), GET /healthz
// (liveness), GET /readyz (readiness).
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blitzsplit"
	"blitzsplit/internal/bitset"
	"blitzsplit/internal/canon"
	"blitzsplit/internal/cluster"
	"blitzsplit/internal/core"
	"blitzsplit/internal/cost"
	"blitzsplit/internal/faultinject"
	"blitzsplit/internal/plan"
	"blitzsplit/internal/spec"
	"blitzsplit/internal/telemetry"
)

// HeaderFingerprint carries the query's canonical fingerprint (hex) on every
// /v1/optimize response: the exact identity the plan cache, coalescing, and
// the cluster ring all key on. Two requests with the same value are the same
// query shape under relabeling and are guaranteed the same plan.
const HeaderFingerprint = "X-Blitz-Fingerprint"

// Defaults applied by New for zero-valued Config fields.
const (
	DefaultMaxInFlight    = 0 // sentinel: 2 × GOMAXPROCS
	DefaultAdmissionWait  = 100 * time.Millisecond
	DefaultRequestTimeout = 2 * time.Second
	DefaultMaxTimeout     = 30 * time.Second
	DefaultMaxBody        = 1 << 20 // 1 MiB of request JSON
	DefaultMaxSynthRows   = 4 << 20 // ~4M base rows synthesized per /v1/execute
)

// Config parameterizes New. The zero value serves with sane production
// defaults: a caching engine, 2×GOMAXPROCS in-flight optimizations, 2 s
// default deadlines, and a memory gate at the engine's arena budget.
type Config struct {
	// Engine is the optimizer behind the server. Nil constructs a caching
	// engine from EngineOptions (the plan cache is what makes coalesced
	// followers cheap, so serving without one is only for tests).
	Engine *blitzsplit.Engine
	// EngineOptions configures the engine New constructs when Engine is nil.
	EngineOptions blitzsplit.EngineOptions
	// MaxInFlight bounds concurrently admitted optimizations; 0 selects
	// 2 × GOMAXPROCS. Coalesced followers do not take a slot: their expected
	// cost is a cache hit, and charging them would let one popular query
	// shape starve the whole server.
	MaxInFlight int
	// AdmissionWait is how long a request may wait for an in-flight slot
	// before the server sheds it with 503; 0 selects 100 ms.
	AdmissionWait time.Duration
	// RequestTimeout is the per-request optimization deadline when the
	// client does not send timeout_ms; 0 selects 2 s.
	RequestTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; 0 selects 30 s.
	MaxTimeout time.Duration
	// MaxRelations rejects larger queries with 422 before any work; 0
	// selects bitset.MaxRelations (the representation's hard limit, 30).
	MaxRelations int
	// Enumerator selects the exact fill strategy for every request
	// (WithEnumerator): the zero value is the paper's 3^n blitz scan,
	// EnumeratorAuto picks the csg–cmp fill on connected join graphs. An
	// explicit EnumeratorCCP makes requests with disconnected graphs fail
	// with 422 (no Cartesian-product-free plan space exists for them).
	Enumerator blitzsplit.Enumerator
	// MemBudget is the per-request DP-table byte budget (WithMemoryBudget).
	// 0 ties it to the engine arena's byte budget — a table the arena could
	// never pool should not be admitted either. The deadline ladder turns a
	// refusal into an IDP or greedy plan instead of an error.
	MemBudget uint64
	// MaxBody bounds the request body; 0 selects 1 MiB.
	MaxBody int64
	// MaxSynthRows bounds the total base-table rows a /v1/execute request may
	// synthesize (the sum of relation cardinalities); larger requests are
	// refused with 422 before any work. 0 selects DefaultMaxSynthRows.
	MaxSynthRows float64
	// SnapshotPath, when non-empty, is the plan-cache snapshot file behind
	// warm restarts: RestoreSnapshot reads it at startup, SnapshotNow and the
	// periodic loop write it atomically (temp + fsync + rename).
	SnapshotPath string
	// SnapshotInterval is the period of the background snapshot loop started
	// by StartSnapshots; 0 selects DefaultSnapshotInterval. Ignored when
	// SnapshotPath is empty.
	SnapshotInterval time.Duration
	// Registry receives the server's metrics; nil creates a private one.
	Registry *telemetry.Registry
	// Now overrides the clock for tests; nil selects time.Now.
	Now func() time.Time

	// NodeID and Peers turn on fingerprint-sharded cluster serving: Peers is
	// the full static membership (including this node), NodeID names which
	// member this server is. Every query shape has one home shard on the
	// consistent-hash ring over canonical fingerprints; non-owners forward to
	// the owner (one hop max), so coalescing and cache residency are
	// cluster-wide. Leave NodeID empty for single-node serving.
	NodeID string
	Peers  []cluster.Node
	// VirtualNodes is the ring's per-node point count; 0 selects
	// cluster.DefaultVirtualNodes.
	VirtualNodes int
}

// Server serves join-order optimization over HTTP. Construct with New; all
// methods and the handler are safe for concurrent use.
type Server struct {
	eng      *blitzsplit.Engine
	quantum  float64
	cfg      Config
	inflight chan struct{}
	flights  flightGroup
	draining atomic.Bool
	met      *metrics
	// cluster is non-nil when Config.NodeID/Peers enabled sharded serving;
	// see cluster.go.
	cluster *clusterState
	// canonPool recycles flightKey's canonicalizer scratch across requests.
	canonPool sync.Pool
	// handlerPanics counts panics recovered at the HTTP handler boundary
	// (the engine recovers its own; this is everything outside it). snapStop
	// and snapDone manage the periodic snapshot loop.
	handlerPanics atomic.Uint64
	snapMu        sync.Mutex
	snapStop      chan struct{}
	snapDone      chan struct{}
}

// New returns a server over cfg.Engine (or a fresh caching engine).
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = blitzsplit.New(cfg.EngineOptions)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.AdmissionWait <= 0 {
		cfg.AdmissionWait = DefaultAdmissionWait
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.MaxRelations <= 0 || cfg.MaxRelations > bitset.MaxRelations {
		cfg.MaxRelations = bitset.MaxRelations
	}
	if cfg.MemBudget == 0 {
		cfg.MemBudget = cfg.Engine.Stats().Arena.Capacity
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.MaxSynthRows <= 0 {
		cfg.MaxSynthRows = DefaultMaxSynthRows
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		eng:      cfg.Engine,
		quantum:  cfg.EngineOptions.SelectivityQuantum,
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInFlight),
	}
	s.flights.init()
	s.met = newMetrics(cfg.Registry, s)
	if cfg.NodeID != "" && len(cfg.Peers) > 0 {
		s.cluster = newClusterState(s, cfg)
	}
	return s
}

// Engine returns the engine behind the server.
func (s *Server) Engine() *blitzsplit.Engine { return s.eng }

// Registry returns the telemetry registry the server reports into.
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// BeginDrain flips the server into draining: /readyz answers 503 so load
// balancers stop routing new traffic, and new optimize requests are refused,
// while requests already in flight run to completion. Idempotent. The caller
// (cmd/blitzd) follows up with http.Server.Shutdown, which waits for the
// in-flight handlers.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted optimizations currently running.
func (s *Server) InFlight() int { return len(s.inflight) }

// Handler returns the server's route table. The /debug/pprof/ endpoints
// expose the runtime profiler on the same mux as the other debug routes, so
// a production blitzd can be profiled in place:
//
//	go tool pprof http://host/debug/pprof/profile?seconds=30
//	go tool pprof http://host/debug/pprof/heap
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	mux.HandleFunc("/v1/optimize/batch", s.handleBatch)
	mux.HandleFunc("/v1/execute", s.handleExecute)
	if s.cluster != nil {
		mux.HandleFunc(cluster.PeerPlanPath, s.handlePeerPlan)
		mux.HandleFunc(cluster.PeerFillPath, s.handlePeerFill)
		mux.HandleFunc(cluster.PeerHandoffPath, s.handlePeerHandoff)
		mux.HandleFunc("/v1/cluster/status", s.handleClusterStatus)
	}
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// OptimizeRequest is the POST /v1/optimize body: a query spec (the same
// relations/joins document the CLI reads) plus serving options.
type OptimizeRequest struct {
	spec.File
	// Model selects the cost model by name; empty means "naive".
	Model string `json:"model,omitempty"`
	// LeftDeep restricts the search to left-deep vines.
	LeftDeep bool `json:"left_deep,omitempty"`
	// TimeoutMS is the requested optimization deadline in milliseconds,
	// capped at the server's MaxTimeout; 0 takes the server default. The
	// server may shrink it further under load — see OptimizeResponse.Mode.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludePlan asks for the full plan tree in the response.
	IncludePlan bool `json:"include_plan,omitempty"`
}

// OptimizeResponse is the POST /v1/optimize success body.
type OptimizeResponse struct {
	Expression  string  `json:"expression"`
	Cost        float64 `json:"cost"`
	Cardinality float64 `json:"cardinality"`
	// Mode is the optimizer rung that produced the plan ("exhaustive",
	// "threshold", "idp", "greedy"); anything but exhaustive means a budget
	// or server overload degraded the response.
	Mode     string `json:"mode"`
	Degraded bool   `json:"degraded"`
	// Cached reports a plan-cache hit; Coalesced reports that this request
	// waited on an identical in-flight optimization instead of running its
	// own (its result then normally comes from the cache the leader filled).
	Cached    bool          `json:"cached"`
	Coalesced bool          `json:"coalesced"`
	Counters  core.Counters `json:"counters"`
	ElapsedUS int64         `json:"elapsed_us"`
	// Fingerprint is the query's canonical fingerprint in hex (also the
	// HeaderFingerprint response header): identical for every relabeling of
	// the same query shape, and the identity the cluster ring shards on.
	Fingerprint string     `json:"fingerprint,omitempty"`
	Plan        *plan.Node `json:"plan,omitempty"`
}

// errorResponse is every non-200 body. Kind, when set, is a stable
// machine-readable classifier ("row_limit", "synthesis_limit") so clients can
// branch without parsing the human-readable message.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.failKind(w, code, "", format, args...)
}

func (s *Server) failKind(w http.ResponseWriter, code int, kind, format string, args ...any) {
	s.met.requests(code).Inc()
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...), Kind: kind})
}

// handleOptimize is the serving spine: decode → validate → coalesce →
// admit → optimize (deadline-laddered) → respond. A panic anywhere in the
// spine is recovered here and answered with 500: one request fails, the
// process keeps serving. (The engine recovers its own optimizer panics and
// returns *InternalError; this boundary catches everything outside it.)
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := s.cfg.Now()
	defer func() { s.met.latency.Observe(s.cfg.Now().Sub(start)) }()
	defer func() {
		if v := recover(); v != nil {
			s.handlerPanics.Add(1)
			s.met.panics.Inc()
			s.fail(w, http.StatusInternalServerError, "internal error: %v", v)
		}
	}()
	faultinject.Inject(faultinject.ServerRequest)

	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.met.shed.Inc()
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, code, err := s.decodeRequest(r)
	if err != nil {
		s.fail(w, code, "%v", err)
		return
	}
	q, cq, err := s.buildQuery(req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, fp := s.flightKey(cq, req)
	fpHex := hex.EncodeToString(fp)

	// Cluster routing: a shape owned by a peer is forwarded to its home
	// shard (one hop), unless a warm local copy can serve it here. routed
	// true means the peer's response has been relayed; pushTo non-nil means
	// the owner was unreachable — serve locally, then push the plan home.
	var pushTo *cluster.Node
	var ekey []byte
	if s.cluster != nil {
		var routed bool
		routed, pushTo, ekey = s.routeOptimize(w, r, req, q, fp)
		if routed {
			return
		}
	}

	resp, serr := s.optimizeLocal(r.Context(), req, q, key, start)
	if serr != nil {
		s.failKind(w, serr.code, serr.kind, "%s", serr.msg)
		return
	}
	if pushTo != nil && !resp.Degraded {
		s.asyncPushPlan(*pushTo, ekey)
	}
	resp.Fingerprint = fpHex
	if fpHex != "" {
		w.Header().Set(HeaderFingerprint, fpHex)
	}
	s.met.requests(http.StatusOK).Inc()
	s.writeJSON(w, http.StatusOK, resp)
}

// buildQuery resolves a decoded request into the optimizer representation
// twice over: the core query (for canonicalization/flight keys) and the
// facade query (for the engine call). Validation already ran in
// decodeRequest; all errors here are 400s.
func (s *Server) buildQuery(req *OptimizeRequest) (*blitzsplit.Query, core.Query, error) {
	cq, _, err := req.File.Query()
	if err != nil {
		return nil, core.Query{}, err
	}
	q := blitzsplit.NewQuery()
	for _, rel := range req.Relations {
		if err := q.AddRelation(rel.Name, rel.Cardinality); err != nil {
			return nil, core.Query{}, err
		}
	}
	for _, j := range req.Joins {
		if err := q.Join(j.A, j.B, j.Selectivity); err != nil {
			return nil, core.Query{}, err
		}
	}
	return q, cq, nil
}

// serveOptions is the option set every served optimization runs under; the
// engine cache key derives from it, so routeOptimize passes the identical
// set to PlanKey.
func (s *Server) serveOptions(req *OptimizeRequest) []blitzsplit.Option {
	options := []blitzsplit.Option{
		blitzsplit.WithDeadlineLadder(),
		blitzsplit.WithMemoryBudget(s.cfg.MemBudget),
		blitzsplit.WithEnumerator(s.cfg.Enumerator),
	}
	if req.Model != "" {
		options = append(options, blitzsplit.WithCostModel(req.Model))
	}
	if req.LeftDeep {
		options = append(options, blitzsplit.WithLeftDeep())
	}
	return options
}

// serveErr is a classified serving failure: the HTTP code, the stable
// machine-readable kind (may be empty), and the message. optimizeLocal
// returns it instead of writing, so the single-request handler and the batch
// handler share one spine.
type serveErr struct {
	code int
	kind string
	msg  string
}

// optimizeLocal runs the local serving spine for one decoded request:
// coalesce → admit → optimize (deadline-laddered) → classify. It increments
// the optimization/coalescing/shedding/degradation metrics but never writes
// a response and never counts blitzd_requests_total — callers do both.
func (s *Server) optimizeLocal(ctx context.Context, req *OptimizeRequest, q *blitzsplit.Query, key string, start time.Time) (OptimizeResponse, *serveErr) {
	// Occupancy is sampled before this request takes its own slot: it is the
	// load the request *adds to*, and it decides how much deadline the
	// request deserves under pressure.
	timeout := s.effectiveTimeout(req, len(s.inflight))

	// Coalesce on the canonical fingerprint before admission: a follower's
	// expected cost is one cache hit, so it neither occupies a slot nor
	// counts as an optimization.
	coalesced := false
	if key != "" {
		leader, wait := s.flights.join(key)
		if !leader {
			coalesced = true
			s.met.coalesced.Inc()
			select {
			case <-wait:
				// Leader finished; the cache now (normally) holds the plan.
			case <-ctx.Done():
				return OptimizeResponse{}, &serveErr{code: http.StatusServiceUnavailable,
					msg: "client went away while coalesced"}
			}
		} else {
			defer s.flights.leave(key)
			// Leaders run a real optimization and must pass admission.
			if !s.admit(ctx) {
				s.met.shed.Inc()
				return OptimizeResponse{}, &serveErr{code: http.StatusServiceUnavailable,
					msg: fmt.Sprintf("over capacity: %d optimizations in flight", s.cfg.MaxInFlight)}
			}
			defer func() { <-s.inflight }()
			s.met.optimizations.Inc()
		}
	} else {
		// Uncanonicalizable queries (none today: estimators cannot arrive
		// via JSON) skip coalescing but still pass admission.
		if !s.admit(ctx) {
			s.met.shed.Inc()
			return OptimizeResponse{}, &serveErr{code: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("over capacity: %d optimizations in flight", s.cfg.MaxInFlight)}
		}
		defer func() { <-s.inflight }()
		s.met.optimizations.Inc()
	}

	// Map the (possibly overload-shrunk) deadline onto the ladder: less
	// time, cheaper rung, answer anyway.
	options := append(s.serveOptions(req), blitzsplit.WithTimeout(timeout))

	res, err := s.eng.Optimize(ctx, q, options...)
	if err != nil {
		var ie *blitzsplit.InternalError
		if errors.As(err, &ie) {
			// An optimizer panic the engine recovered: the request fails 500,
			// the counter feeds the chaos harness and alerting.
			s.met.panics.Inc()
		}
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrNoPlan):
			// No plan fits inside the float32 overflow limit: the query is
			// well-formed but unanswerable as posed.
			code = http.StatusUnprocessableEntity
		case errors.Is(err, blitzsplit.ErrEnumeratorUnsupported):
			// The server was pinned to the CCP enumerator and this query's
			// graph is outside its plan space — a property of the request,
			// not a server fault.
			code = http.StatusUnprocessableEntity
		case errors.Is(err, blitzsplit.ErrQuarantined):
			// The shape has crashed the optimizer repeatedly and the engine
			// refuses to run it again: a property of the request, answered
			// 422 so clients stop resubmitting it.
			code = http.StatusUnprocessableEntity
		case errors.Is(err, core.ErrBudgetExceeded):
			// Only explicit cancellation reaches here — the ladder absorbs
			// deadlines — so the client is gone; the code is a formality.
			code = http.StatusServiceUnavailable
		}
		return OptimizeResponse{}, &serveErr{code: code, msg: err.Error()}
	}
	if res.Degraded {
		s.met.degraded(res.Mode).Inc()
	}

	resp := OptimizeResponse{
		Expression:  res.Expression(),
		Cost:        res.Cost,
		Cardinality: res.Cardinality,
		Mode:        res.Mode,
		Degraded:    res.Degraded,
		Cached:      res.Cached,
		Coalesced:   coalesced,
		Counters:    res.Counters,
		ElapsedUS:   s.cfg.Now().Sub(start).Microseconds(),
	}
	if req.IncludePlan {
		resp.Plan = res.Plan
	}
	return resp, nil
}

// decodeRequest reads and validates the request body, classifying failures:
// malformed or invalid JSON → 400, structurally valid but oversized → 422.
func (s *Server) decodeRequest(r *http.Request) (*OptimizeRequest, int, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if int64(len(body)) > s.cfg.MaxBody {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBody)
	}
	var req OptimizeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err)
	}
	if code, err := s.validateRequest(&req); err != nil {
		return nil, code, err
	}
	return &req, 0, nil
}

// validateRequest applies the semantic checks shared by the single-request
// and batch decoders: spec validity (400), server size limits (422), and
// option sanity (400).
func (s *Server) validateRequest(req *OptimizeRequest) (int, error) {
	if err := req.File.Validate(); err != nil {
		return http.StatusBadRequest, err
	}
	if n := len(req.Relations); n > s.cfg.MaxRelations {
		return http.StatusUnprocessableEntity,
			fmt.Errorf("%d relations exceeds the server limit of %d", n, s.cfg.MaxRelations)
	}
	if req.TimeoutMS < 0 {
		return http.StatusBadRequest, fmt.Errorf("timeout_ms must be ≥ 0")
	}
	if req.Model != "" {
		if _, err := cost.ByName(req.Model); err != nil {
			return http.StatusBadRequest, err
		}
	}
	return 0, nil
}

// flightKey derives the coalescing key: the canonical fingerprint extended
// with every request option that changes which plan is produced. Identical
// queries — and isomorphic ones under relabeling — share a key; the
// fingerprint is exact (never a hash), so distinct queries never coalesce.
// The canonicalizer comes from a pool so each request reuses refinement
// scratch instead of re-allocating it. The bare fingerprint is also returned
// (a fresh copy): it is the response's identity field and what the cluster
// ring shards on.
func (s *Server) flightKey(cq core.Query, req *OptimizeRequest) (string, []byte) {
	c, _ := s.canonPool.Get().(*canon.Canonicalizer)
	if c == nil {
		c = new(canon.Canonicalizer)
	}
	if err := c.Canonicalize(cq, canon.Options{SelectivityQuantum: s.quantum}); err != nil {
		s.canonPool.Put(c)
		return "", nil
	}
	key := string(c.Fingerprint()) + "\x00" + req.Model + "\x00" + strconv.FormatBool(req.LeftDeep)
	fp := append([]byte(nil), c.Fingerprint()...)
	s.canonPool.Put(c)
	return key, fp
}

// admit takes an in-flight slot, waiting up to AdmissionWait (bounded also
// by the client's context). False means the request should be shed.
func (s *Server) admit(ctx context.Context) bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(s.cfg.AdmissionWait)
	defer t.Stop()
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// effectiveTimeout maps the requested deadline through the overload ladder:
// as in-flight occupancy (used, sampled before this request's own slot)
// rises, the deadline shrinks by powers of two, so the degradation ladder
// lands on cheaper rungs (threshold → IDP → greedy) while the server still
// answers every admitted request.
func (s *Server) effectiveTimeout(req *OptimizeRequest, used int) time.Duration {
	d := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	d /= overloadDivisor(used, cap(s.inflight))
	if d < time.Millisecond {
		d = time.Millisecond // the greedy floor needs effectively no time
	}
	return d
}

// overloadDivisor converts in-flight occupancy into a deadline divisor:
// 1 below half load, then 2/4/8 at ½, ¾, and 9/10 occupancy.
func overloadDivisor(used, capacity int) time.Duration {
	switch {
	case used*10 >= capacity*9:
		return 8
	case used*4 >= capacity*3:
		return 4
	case used*2 >= capacity:
		return 2
	default:
		return 1
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Registry.WriteProm(w)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Registry.WriteJSON(w)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: 200 while accepting traffic, 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ready\n")
}
