package server

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blitzsplit"
	"blitzsplit/internal/faultinject"
)

// TestSnapshotWarmRestart: serve → snapshot → "restart" (fresh server on the
// same path) → the replayed query is a warm cache hit.
func TestSnapshotWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")

	s1, ts1 := newTestServer(t, Config{SnapshotPath: path})
	code, b := postOptimize(t, ts1.URL, chainBody(5, 2000))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	ws, err := s1.SnapshotNow()
	if err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if ws.Entries != 1 {
		t.Fatalf("snapshot wrote %d entries, want 1", ws.Entries)
	}

	s2, ts2 := newTestServer(t, Config{SnapshotPath: path})
	ls, err := s2.RestoreSnapshot()
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if ls.Loaded != 1 {
		t.Fatalf("restored %d entries, want 1: %v", ls.Loaded, ls)
	}
	code, b = postOptimize(t, ts2.URL, chainBody(5, 2000))
	if code != http.StatusOK {
		t.Fatalf("warm status = %d: %s", code, b)
	}
	if r := decodeResponse(t, b); !r.Cached {
		t.Error("restarted server missed on the snapshotted shape")
	}
}

// TestSnapshotRestoreMissingAndCorrupt: a missing file is a clean cold start;
// a corrupt file restores nothing but serving still works.
func TestSnapshotRestoreMissingAndCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	s, ts := newTestServer(t, Config{SnapshotPath: path})
	if ls, err := s.RestoreSnapshot(); err != nil || ls.Loaded != 0 {
		t.Fatalf("missing-file restore = %v, %v; want clean zero", ls, err)
	}

	if err := os.WriteFile(path, []byte("bzsnap1\x00garbage-records-here"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{SnapshotPath: path})
	ls, err := s2.RestoreSnapshot()
	if err != nil {
		t.Fatalf("corrupt restore errored: %v", err)
	}
	if ls.Loaded != 0 {
		t.Fatalf("loaded %d from garbage", ls.Loaded)
	}
	if code, b := postOptimize(t, ts2.URL, chainBody(4, 700)); code != http.StatusOK {
		t.Fatalf("serving after corrupt restore: %d %s", code, b)
	}
	_ = ts
}

// TestSnapshotLoop: the periodic loop writes the file without manual calls.
func TestSnapshotLoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	s, ts := newTestServer(t, Config{SnapshotPath: path, SnapshotInterval: 5 * time.Millisecond})
	if code, b := postOptimize(t, ts.URL, chainBody(5, 3000)); code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	stop := s.StartSnapshots(func(err error) { t.Errorf("snapshot loop: %v", err) })
	waitFor(t, 2*time.Second, func() bool {
		_, err := os.Stat(path)
		return err == nil
	}, "periodic snapshot to appear")
	stop()
	stop() // idempotent

	st := s.Engine().Stats()
	if st.LastSnapshot.At.IsZero() || st.LastSnapshot.Entries != 1 {
		t.Errorf("LastSnapshot = %+v, want one recorded entry", st.LastSnapshot)
	}
}

// TestSnapshotNoPath: snapshot operations without a configured path are
// explicit errors (SnapshotNow/Restore) or no-ops (StartSnapshots).
func TestSnapshotNoPath(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.SnapshotNow(); err != ErrNoSnapshotPath {
		t.Errorf("SnapshotNow err = %v, want ErrNoSnapshotPath", err)
	}
	if _, err := s.RestoreSnapshot(); err != ErrNoSnapshotPath {
		t.Errorf("RestoreSnapshot err = %v, want ErrNoSnapshotPath", err)
	}
	stop := s.StartSnapshots(nil)
	stop()
}

// TestPanicIsolation: an injected optimizer panic answers 500 with the panic
// in the body; the server survives and the counters record it.
func TestPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{})

	faultinject.Set(faultinject.EngineOptimize, func() { panic("chaos-panic") })
	code, b := postOptimize(t, ts.URL, chainBody(5, 4000))
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", code, b)
	}
	if !strings.Contains(string(b), "chaos-panic") {
		t.Errorf("body %s does not surface the panic", b)
	}
	faultinject.Reset()

	if code, b = postOptimize(t, ts.URL, chainBody(5, 4000)); code != http.StatusOK {
		t.Fatalf("post-panic status = %d: %s", code, b)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if got := s.Engine().Stats().PanicsRecovered; got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}
}

// TestHandlerPanicIsolation: a panic outside the engine — at the handler
// boundary — also answers 500 and keeps the server alive.
func TestHandlerPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{})
	faultinject.Set(faultinject.ServerRequest, func() { panic("handler-panic") })
	code, b := postOptimize(t, ts.URL, chainBody(4, 500))
	faultinject.Reset()
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", code, b)
	}
	if got := s.HandlerPanics(); got != 1 {
		t.Errorf("HandlerPanics = %d, want 1", got)
	}
	if code, _ := postOptimize(t, ts.URL, chainBody(4, 500)); code != http.StatusOK {
		t.Fatalf("server did not survive the handler panic: %d", code)
	}
}

// TestQuarantineOver422: a shape that keeps panicking is eventually refused
// with 422 — without re-running the crashing optimization.
func TestQuarantineOver422(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{})
	faultinject.Set(faultinject.EngineOptimize, func() { panic("always") })
	for i := 0; i < blitzsplit.DefaultQuarantineThreshold; i++ {
		if code, b := postOptimize(t, ts.URL, chainBody(6, 9000)); code != http.StatusInternalServerError {
			t.Fatalf("strike %d: status = %d: %s", i+1, code, b)
		}
	}
	code, b := postOptimize(t, ts.URL, chainBody(6, 9000))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined status = %d, want 422: %s", code, b)
	}
	if !strings.Contains(string(b), "quarantined") {
		t.Errorf("body %s does not mention quarantine", b)
	}
	faultinject.Reset()
	// Sticky even with the fault cleared; an isomorphic relabeling of the
	// shape is refused too (the quarantine keys on the canonical form).
	if code, _ := postOptimize(t, ts.URL, chainBody(6, 9000)); code != http.StatusUnprocessableEntity {
		t.Fatalf("post-fault status = %d, want 422", code)
	}
	if got := s.Engine().Stats().QuarantinedShapes; got != 1 {
		t.Errorf("QuarantinedShapes = %d, want 1", got)
	}
	// Unrelated shapes serve fine.
	if code, b := postOptimize(t, ts.URL, chainBody(5, 1234)); code != http.StatusOK {
		t.Fatalf("unrelated shape: %d %s", code, b)
	}
}

// TestSnapshotMetricsExposed: the snapshot and panic series appear on
// /metrics with the expected values.
func TestSnapshotMetricsExposed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	s, ts := newTestServer(t, Config{SnapshotPath: path})
	if code, b := postOptimize(t, ts.URL, chainBody(5, 5000)); code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, b)
	}
	if _, err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"blitzd_snapshot_last_entries 1",
		"blitzd_snapshot_last_bytes",
		"blitzd_snapshot_age_seconds",
		"blitzd_snapshot_restored_entries 0",
		"blitzd_snapshot_restore_skipped 0",
		"blitzd_panics_recovered_total 0",
		"blitzd_quarantined_shapes 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
