// Package stats provides the small numeric toolkit the benchmark harness
// needs: geometric means, harmonic numbers (for the §3.3 expected-count
// analysis), logarithmic parameter grids (the Appendix cardinality axis),
// and linear least squares (for fitting the paper's execution-time formula
// (3) to measured timings, as done for Figure 2).
package stats

import (
	"errors"
	"math"
)

// GeometricMean returns (∏ xs)^(1/len), computed in log space. It returns 0
// for an empty slice or when any value is 0, and NaN if any value is
// negative.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 0 {
			return math.NaN()
		}
		if x == 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Harmonic returns H_k = Σ_{i=1..k} 1/i exactly (by summation) for k ≤ 10⁶,
// and by the asymptotic ln k + γ + 1/(2k) beyond.
func Harmonic(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k <= 1_000_000 {
		h := 0.0
		for i := 1; i <= k; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	return math.Log(float64(k)) + EulerGamma + 1/(2*float64(k))
}

// EulerGamma is the Euler–Mascheroni constant γ (the paper cites Knuth for
// H_k ≈ ln k + γ).
const EulerGamma = 0.57721566490153286

// ExpectedCondCount returns the §3.3 prediction for the number of executions
// of the conditional block in find_best_split across a whole run:
// (ln 2/2)·n·2^n + γ·2^n.
func ExpectedCondCount(n int) float64 {
	p2 := math.Pow(2, float64(n))
	return math.Ln2/2*float64(n)*p2 + EulerGamma*p2
}

// LogGrid returns points from lo to hi (inclusive, within floating rounding)
// spaced uniformly in log space: the Appendix mean-cardinality axis uses
// LogGrid(1, 1e6, 10) → 1, 4.64, 21.5, 100, 464, ….
func LogGrid(lo, hi float64, points int) []float64 {
	if points <= 0 || lo <= 0 || hi < lo {
		return nil
	}
	if points == 1 {
		return []float64{lo}
	}
	out := make([]float64, points)
	step := (math.Log(hi) - math.Log(lo)) / float64(points-1)
	for i := range out {
		out[i] = math.Exp(math.Log(lo) + float64(i)*step)
	}
	return out
}

// LinGrid returns points from lo to hi inclusive, uniformly spaced.
func LinGrid(lo, hi float64, points int) []float64 {
	if points <= 0 || hi < lo {
		return nil
	}
	if points == 1 {
		return []float64{lo}
	}
	out := make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// ErrSingular indicates the least-squares system has no unique solution.
var ErrSingular = errors.New("stats: singular least-squares system")

// LeastSquares solves min ‖X·β − y‖² for β by normal equations with Gaussian
// elimination (partial pivoting). X is row-major: len(X) observations, each
// with the same number of predictors. Small systems only (the harness fits 3
// coefficients).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("stats: dimension mismatch")
	}
	p := len(x[0])
	if p == 0 || len(x) < p {
		return nil, errors.New("stats: underdetermined system")
	}
	// Normal equations: (XᵀX) β = Xᵀy.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p+1)
	}
	for r, row := range x {
		if len(row) != p {
			return nil, errors.New("stats: ragged design matrix")
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][p] += row[i] * y[r]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < p; col++ {
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= p; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	beta := make([]float64, p)
	for i := range beta {
		beta[i] = a[i][p] / a[i][i]
	}
	return beta, nil
}

// FitFormula3 fits the paper's execution-time formula (3)
//
//	time(n) = 3^n·T_loop + (ln2/2)·n·2^n·T_cond + 2^n·T_subset
//
// to measured (n, seconds) pairs, returning the three constants in seconds.
// Coefficients are not constrained to be nonnegative; with few or noisy
// points the smaller terms can fit slightly negative, which the caller
// should treat as ≈ 0.
func FitFormula3(ns []int, seconds []float64) (tLoop, tCond, tSubset float64, err error) {
	if len(ns) != len(seconds) {
		return 0, 0, 0, errors.New("stats: dimension mismatch")
	}
	x := make([][]float64, len(ns))
	for i, n := range ns {
		fn := float64(n)
		x[i] = []float64{
			math.Pow(3, fn),
			math.Ln2 / 2 * fn * math.Pow(2, fn),
			math.Pow(2, fn),
		}
	}
	beta, err := LeastSquares(x, seconds)
	if err != nil {
		return 0, 0, 0, err
	}
	return beta[0], beta[1], beta[2], nil
}

// EvalFormula3 evaluates formula (3) at n with the given constants.
func EvalFormula3(n int, tLoop, tCond, tSubset float64) float64 {
	fn := float64(n)
	return math.Pow(3, fn)*tLoop + math.Ln2/2*fn*math.Pow(2, fn)*tCond + math.Pow(2, fn)*tSubset
}
