package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(1, m)
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{10, 1000}); !almost(got, 100, 1e-12) {
		t.Errorf("GeometricMean = %v", got)
	}
	if got := GeometricMean(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := GeometricMean([]float64{5, 0}); got != 0 {
		t.Errorf("zero = %v", got)
	}
	if got := GeometricMean([]float64{-1, 4}); !math.IsNaN(got) {
		t.Errorf("negative = %v, want NaN", got)
	}
	if got := GeometricMean([]float64{7}); !almost(got, 7, 1e-12) {
		t.Errorf("singleton = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
}

func TestHarmonic(t *testing.T) {
	if got := Harmonic(1); got != 1 {
		t.Errorf("H_1 = %v", got)
	}
	if got := Harmonic(4); !almost(got, 1+0.5+1.0/3+0.25, 1e-12) {
		t.Errorf("H_4 = %v", got)
	}
	if got := Harmonic(0); got != 0 {
		t.Errorf("H_0 = %v", got)
	}
	// The asymptotic branch agrees with the exact sum near the cutover.
	k := 1_000_000
	exact := Harmonic(k)
	asym := math.Log(float64(k)) + EulerGamma + 1/(2*float64(k))
	if !almost(exact, asym, 1e-9) {
		t.Errorf("H_%d exact %v vs asym %v", k, exact, asym)
	}
	// And the paper's H_k ≈ ln k + γ within 1e-3 at k = 2^15.
	if got := Harmonic(1 << 15); !almost(got, math.Log(float64(1<<15))+EulerGamma, 1e-4) {
		t.Errorf("H_{2^15} = %v", got)
	}
}

func TestExpectedCondCount(t *testing.T) {
	// n = 4: (ln2/2)·4·16 + γ·16 ≈ 22.18 + 9.24.
	want := math.Ln2/2*4*16 + EulerGamma*16
	if got := ExpectedCondCount(4); !almost(got, want, 1e-12) {
		t.Errorf("ExpectedCondCount(4) = %v, want %v", got, want)
	}
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(1, 1e6, 10)
	if len(g) != 10 {
		t.Fatalf("len = %d", len(g))
	}
	if !almost(g[0], 1, 1e-12) || !almost(g[9], 1e6, 1e-9) {
		t.Errorf("endpoints = %v, %v", g[0], g[9])
	}
	// The Appendix sample points: 1, 4.64, 21.5, 100, …
	if !almost(g[1], 4.6415888, 1e-6) || !almost(g[2], 21.5443469, 1e-6) || !almost(g[3], 100, 1e-9) {
		t.Errorf("grid = %v", g[:4])
	}
	// Constant ratio.
	for i := 2; i < len(g); i++ {
		if !almost(g[i]/g[i-1], g[1]/g[0], 1e-9) {
			t.Errorf("ratio not constant at %d", i)
		}
	}
	if LogGrid(0, 10, 3) != nil || LogGrid(10, 1, 3) != nil || LogGrid(1, 10, 0) != nil {
		t.Error("invalid grids should be nil")
	}
	if g := LogGrid(5, 100, 1); len(g) != 1 || g[0] != 5 {
		t.Errorf("single-point grid = %v", g)
	}
}

func TestLinGrid(t *testing.T) {
	g := LinGrid(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almost(g[i], want[i], 1e-12) {
			t.Fatalf("LinGrid = %v", g)
		}
	}
	if LinGrid(1, 0, 2) != nil || LinGrid(0, 1, 0) != nil {
		t.Error("invalid grids should be nil")
	}
	if g := LinGrid(3, 9, 1); len(g) != 1 || g[0] != 3 {
		t.Errorf("single-point grid = %v", g)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2·a + 3·b fits exactly.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{2, 3, 5, 7}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(beta[0], 2, 1e-9) || !almost(beta[1], 3, 1e-9) {
		t.Errorf("beta = %v", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	// Collinear predictors are singular.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(x, []float64{1, 2, 3}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := LeastSquares([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("mismatched y accepted")
	}
}

// TestLeastSquaresRecoversRandomModel: property test — noise-free synthetic
// observations recover the coefficients.
func TestLeastSquaresRecoversRandomModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(3)
		truth := make([]float64, p)
		for i := range truth {
			truth[i] = rng.Float64()*10 - 5
		}
		rows := p + 3 + rng.Intn(5)
		x := make([][]float64, rows)
		y := make([]float64, rows)
		for r := range x {
			x[r] = make([]float64, p)
			for c := range x[r] {
				x[r][c] = rng.Float64() * 4
			}
			for c := range x[r] {
				y[r] += truth[c] * x[r][c]
			}
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return true // degenerate random draw; fine
		}
		for i := range beta {
			if !almost(beta[i], truth[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFitFormula3RoundTrip: synthesize timings from known constants and
// recover them.
func TestFitFormula3RoundTrip(t *testing.T) {
	tLoop, tCond, tSubset := 5e-9, 2e-8, 4e-8
	var ns []int
	var secs []float64
	for n := 4; n <= 15; n++ {
		ns = append(ns, n)
		secs = append(secs, EvalFormula3(n, tLoop, tCond, tSubset))
	}
	gl, gc, gs, err := FitFormula3(ns, secs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(gl, tLoop, 1e-6) || !almost(gc, tCond, 1e-6) || !almost(gs, tSubset, 1e-6) {
		t.Errorf("fit = %v %v %v, want %v %v %v", gl, gc, gs, tLoop, tCond, tSubset)
	}
	if _, _, _, err := FitFormula3([]int{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched fit accepted")
	}
}
