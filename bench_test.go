package blitzsplit

// Benchmarks regenerating every table and figure of Vance & Maier (SIGMOD
// 1996). Each benchmark measures one optimizer invocation per iteration, so
// ns/op is directly comparable to the paper's per-optimization timings
// (SPARCstation 2 and HP 9000/755; the paper's 15-way κ0 point is ≈ 0.9 s on
// the HP). Run:
//
//	go test -bench=. -benchmem
//
// or a single figure:
//
//	go test -bench=Figure2 -benchmem
//
// cmd/blitzbench renders the same experiments as full tables (including the
// operation-count analyses that a time-only benchmark cannot show).

import (
	"fmt"
	"testing"

	"blitzsplit/internal/baseline"
	"blitzsplit/internal/core"
	"blitzsplit/internal/cost"
	"blitzsplit/internal/hybrid"
	"blitzsplit/internal/joingraph"
	"blitzsplit/internal/orders"
	"blitzsplit/internal/workload"
)

// optimizeB runs one case per iteration, failing the benchmark on error.
func optimizeB(b *testing.B, c workload.Case, opts core.Options) {
	b.Helper()
	q := core.Query{Cards: c.Cards, Graph: c.Graph}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 optimizes the paper's worked 4-relation product example.
func BenchmarkTable1(b *testing.B) {
	optimizeB(b, workload.Table1Case(), core.Options{})
}

// BenchmarkFigure2 measures Cartesian-product optimization against n — the
// paper's Figure 2. The growth between successive n should track
// 3^n·T_loop + (ln2/2)·n·2^n·T_cond + 2^n·T_subset.
func BenchmarkFigure2(b *testing.B) {
	for n := 6; n <= 15; n++ {
		c := workload.CartesianCase(n, 10)
		b.Run(fmt.Sprintf("n=%02d", n), func(b *testing.B) {
			optimizeB(b, c, core.Options{})
		})
	}
}

// BenchmarkFigure4 samples the 4-dimensional sensitivity sweep of Figure 4 at
// n = 15: every (cost model × topology) cell at the grid's center
// (mean = 464, var = 0.5) and at the treacherous mean-cardinality-1 corner
// where the paper reports the worst degradation.
func BenchmarkFigure4(b *testing.B) {
	for _, model := range cost.PaperModels() {
		for _, topo := range joingraph.AllTopologies {
			for _, mean := range []float64{1, 464} {
				c := workload.AppendixCase(topo, model, mean, 0.5, workload.DefaultN)
				name := fmt.Sprintf("%s/%s/mean=%g", model.Name(), topo, mean)
				b.Run(name, func(b *testing.B) {
					optimizeB(b, c, core.Options{Model: model})
				})
			}
		}
	}
}

// BenchmarkFigure5 runs the two close-up cells of Figure 5 across the full
// mean-cardinality axis at variability 0.5, exposing the chaise-longue shape
// (slow at mean 1, settling as cardinality grows).
func BenchmarkFigure5(b *testing.B) {
	cells := []struct {
		model cost.Model
		topo  joingraph.Topology
	}{
		{cost.Naive{}, joingraph.TopoChain},
		{cost.NewDiskNestedLoops(), joingraph.TopoCyclePlus3},
	}
	for _, cell := range cells {
		for _, mean := range []float64{1, 21.5, 464, 1e4, 1e6} {
			c := workload.AppendixCase(cell.topo, cell.model, mean, 0.5, workload.DefaultN)
			name := fmt.Sprintf("%s/%s/mean=%g", cell.model.Name(), cell.topo, mean)
			b.Run(name, func(b *testing.B) {
				optimizeB(b, c, core.Options{Model: cell.model})
			})
		}
	}
}

// BenchmarkFigure6 measures the plan-cost-threshold experiments of Figure 6:
// the same two cells as Figure 5, with the paper's thresholds. Cells where
// the threshold is exceeded pay for re-optimization passes (the ripples);
// cells with cheap plans drop well below their Figure-5 counterparts.
func BenchmarkFigure6(b *testing.B) {
	cells := []struct {
		model     cost.Model
		topo      joingraph.Topology
		threshold float64
	}{
		{cost.Naive{}, joingraph.TopoChain, 1e9},
		{cost.NewDiskNestedLoops(), joingraph.TopoCyclePlus3, 1e5},
		{cost.NewDiskNestedLoops(), joingraph.TopoCyclePlus3, 1e14},
	}
	for _, cell := range cells {
		for _, mean := range []float64{21.5, 464, 1e4, 1e6} {
			c := workload.AppendixCase(cell.topo, cell.model, mean, 0.5, workload.DefaultN)
			name := fmt.Sprintf("%s/%s/th=%g/mean=%g", cell.model.Name(), cell.topo, cell.threshold, mean)
			b.Run(name, func(b *testing.B) {
				optimizeB(b, c, core.Options{Model: cell.model, CostThreshold: cell.threshold})
			})
		}
	}
}

// BenchmarkJoinVsCartesian reproduces the §6.2 cross-check: under κ0,
// 15-way join optimization should land in the same time band as 15-way
// Cartesian-product optimization (the paper's 0.6–1.1 s vs 0.9 s).
func BenchmarkJoinVsCartesian(b *testing.B) {
	b.Run("cartesian", func(b *testing.B) {
		optimizeB(b, workload.CartesianCase(workload.DefaultN, 10), core.Options{})
	})
	for _, topo := range joingraph.AllTopologies {
		c := workload.AppendixCase(topo, cost.Naive{}, 464, 0.5, workload.DefaultN)
		b.Run("join/"+topo.String(), func(b *testing.B) {
			optimizeB(b, c, core.Options{})
		})
	}
}

// BenchmarkAblation quantifies each §4 implementation trick on the
// (κdnl, cycle+3) cell: nested ifs, enumeration order, thresholds, and the
// left-deep restriction.
func BenchmarkAblation(b *testing.B) {
	c := workload.AppendixCase(joingraph.TopoCyclePlus3, cost.NewDiskNestedLoops(), 464, 0.5, workload.DefaultN)
	base, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph}, core.Options{Model: c.Model})
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"default", core.Options{Model: c.Model}},
		{"no-nested-ifs", core.Options{Model: c.Model, DisableNestedIfs: true}},
		{"descending-enum", core.Options{Model: c.Model, DescendingSubsets: true}},
		{"threshold-10x", core.Options{Model: c.Model, CostThreshold: base.Cost * 10}},
		{"left-deep", core.Options{Model: c.Model, LeftDeep: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			optimizeB(b, c, v.opts)
		})
	}
}

// BenchmarkMemoization isolates the Appendix note that κsm's logarithm can be
// memoized in the DP table, by comparing the memoized sort-merge model with a
// deliberately unmemoized equivalent.
func BenchmarkMemoization(b *testing.B) {
	c := workload.AppendixCase(joingraph.TopoChain, cost.SortMerge{}, 464, 0.5, workload.DefaultN)
	b.Run("memoized", func(b *testing.B) {
		optimizeB(b, c, core.Options{Model: cost.SortMerge{}})
	})
	b.Run("unmemoized", func(b *testing.B) {
		optimizeB(b, c, core.Options{Model: unmemoizedSortMerge{}})
	})
}

// unmemoizedSortMerge is κsm without the Memoized fast path.
type unmemoizedSortMerge struct{ cost.SortMerge }

// SplitDep recomputes both logarithm terms on every call.
func (m unmemoizedSortMerge) SplitDep(out, l, r float64) float64 {
	return m.SortMerge.SplitDep(out, l, r)
}

// Name distinguishes the model in reports.
func (unmemoizedSortMerge) Name() string { return "sortmerge-unmemoized" }

// BenchmarkBaselines compares blitzsplit against the §2 alternatives on a
// 12-relation Appendix query (12 keeps the exhaustive baselines affordable;
// the stochastic searches get their default budgets).
func BenchmarkBaselines(b *testing.B) {
	n := 12
	c := workload.AppendixCase(joingraph.TopoCyclePlus3, cost.NewDiskNestedLoops(), 464, 0.5, n)
	q := core.Query{Cards: c.Cards, Graph: c.Graph}
	b.Run("blitzsplit-bushy", func(b *testing.B) {
		optimizeB(b, c, core.Options{Model: c.Model})
	})
	b.Run("blitzsplit-leftdeep", func(b *testing.B) {
		optimizeB(b, c, core.Options{Model: c.Model, LeftDeep: true})
	})
	b.Run("selinger-noCP", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SelingerLeftDeep(c.Cards, c.Graph, c.Model, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bushy-noCP", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.BushyNoCP(c.Cards, c.Graph, c.Model); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative-improvement", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.IterativeImprovement(c.Cards, c.Graph, c.Model,
				baseline.StochasticOptions{Seed: int64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulated-annealing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SimulatedAnnealing(c.Cards, c.Graph, c.Model,
				baseline.StochasticOptions{Seed: int64(i + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = q
}

// BenchmarkHybrid measures the §7 hybrid path (IDP block 8, then local
// search) on a 20-relation chain — beyond comfortable exhaustive reach.
func BenchmarkHybrid(b *testing.B) {
	n := 20
	cards := joingraph.CardinalityLadder(n, 464, 0.5)
	g := joingraph.Build(joingraph.AppendixChainEdges(n), cards)
	m := cost.NewDiskNestedLoops()
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hybrid.Greedy(cards, g, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("idp-k8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hybrid.IDP(cards, g, m, hybrid.IDPOptions{K: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chained-local", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hybrid.ChainedLocal(cards, g, m, hybrid.IDPOptions{
				K: 8, Stochastic: baseline.StochasticOptions{Seed: int64(i + 1)},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOrders measures the §6.5 order-aware DP against plain blitzsplit
// on a 12-relation shared-key chain (the state space roughly doubles).
func BenchmarkOrders(b *testing.B) {
	n := 12
	cards := joingraph.CardinalityLadder(n, 5000, 0.25)
	g := joingraph.New(n)
	attrs := make([]int, 0, n-1)
	order := joingraph.AppendixChainOrder(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(order[i-1], order[i], 1.0/1000)
		attrs = append(attrs, 0)
	}
	b.Run("order-aware", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := orders.Optimize(orders.Problem{Cards: cards, Graph: g, EdgeAttr: attrs},
				orders.CostParams{HashFactor: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain-blitzsplit", func(b *testing.B) {
		q := core.Query{Cards: cards, Graph: g}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Optimize(q, core.Options{Model: cost.SortMerge{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI measures the facade overhead end to end on a 10-way
// star query.
func BenchmarkPublicAPI(b *testing.B) {
	build := func() *Query {
		q := NewQuery()
		q.MustAddRelation("facts", 1e7)
		for i := 0; i < 9; i++ {
			name := fmt.Sprintf("dim%d", i)
			q.MustAddRelation(name, float64(10*(i+1)))
			q.MustJoin("facts", name, 1/float64(10*(i+1)))
		}
		return q
	}
	q := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Optimize(WithCostModel("dnl")); err != nil {
			b.Fatal(err)
		}
	}
}
