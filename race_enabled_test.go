//go:build race

package blitzsplit

// raceEnabled reports whether this test binary was built with the race
// detector, which disables open-coded defers — the panic-recovery defer at
// each Engine entry point then costs one heap allocation per call that
// production builds do not pay. Allocation-count regression tests widen
// their bound by exactly that much.
const raceEnabled = true
