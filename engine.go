package blitzsplit

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"blitzsplit/internal/baseline"
	"blitzsplit/internal/canon"
	"blitzsplit/internal/core"
	"blitzsplit/internal/faultinject"
	"blitzsplit/internal/hybrid"
	"blitzsplit/internal/plancache"
)

// EngineOptions configures New. The zero value is a served-traffic default:
// a 64 MiB plan cache over 16 shards, a 256 MiB table arena, exact
// (unquantized) selectivities.
type EngineOptions struct {
	// CacheBytes bounds the plan cache's footprint; 0 selects the 64 MiB
	// default. Ignored when DisableCache is set.
	CacheBytes uint64
	// CacheShards is the shard count (rounded up to a power of two); 0
	// selects 16. More shards reduce lock contention under concurrency.
	CacheShards int
	// DisableCache turns the plan cache off entirely: every Optimize runs
	// cold (but still through the table arena). The package-level default
	// engine runs with the cache disabled so the one-shot API keeps its
	// exact historical semantics.
	DisableCache bool
	// ArenaBytes bounds the idle DP-table pool; 0 selects the 256 MiB
	// default.
	ArenaBytes uint64
	// SelectivityQuantum, when > 0, rounds selectivities to the nearest
	// multiple of the quantum in log2 space before cache lookup, so queries
	// whose selectivities differ only by estimation noise share cached plan
	// shapes. Served results are re-anchored on the caller's actual
	// selectivities (cards and costs recomputed), but the plan shape is the
	// optimum for the quantized query — an approximation. 0 (the default)
	// caches exactly: hits are bit-identical to cold optimizations.
	SelectivityQuantum float64
	// QuarantineThreshold is how many recovered optimizer panics a single
	// cached query shape may cause before the engine quarantines it —
	// refusing further requests for that shape with *QuarantineError instead
	// of re-running a search known to crash. 0 selects the default of 3; a
	// negative value disables quarantine (panics are still recovered and
	// counted).
	QuarantineThreshold int
}

// DefaultQuarantineThreshold is the panic count at which an engine
// quarantines a query shape when EngineOptions.QuarantineThreshold is 0.
const DefaultQuarantineThreshold = 3

// Engine is a long-lived, concurrency-safe optimizer: the one-shot facade
// rebuilt around two layers of reuse. A table arena pools the 2^n-element DP
// tables across runs (and across the degradation ladder's rungs), and a
// sharded LRU plan cache keyed by canonical query fingerprints
// (internal/canon) serves repeated query shapes — under any relation
// numbering — without re-running the 3^n search. Construct with New; any
// number of goroutines may call Optimize concurrently.
type Engine struct {
	cache   *plancache.Cache // nil when disabled
	arena   *core.Arena
	quantum float64
	// scratch pools serveScratch values so concurrent Optimize calls never
	// contend on one canonicalizer and a steady-state cache hit performs O(1)
	// small allocations.
	scratch sync.Pool
	// execs, reopts, and downranks instrument OptimizeAndExecute: executions
	// served, adaptive re-optimization events observed, and cache entries
	// demoted after a replan proved their estimates stale (execute.go).
	execs     atomic.Uint64
	reopts    atomic.Uint64
	downranks atomic.Uint64
	// panics counts optimizer panics recovered at the engine boundary;
	// quarThreshold and quar implement the K-strike quarantine (crash.go).
	panics        atomic.Uint64
	quarThreshold int
	quar          struct {
		total       atomic.Uint64 // strikes ever recorded; 0 gates the fast path
		mu          sync.Mutex
		strikes     map[string]int
		quarantined int // shapes at or past the threshold
	}
	// snap records the latest snapshot write and restore for Stats.
	snap struct {
		mu       sync.Mutex
		last     SnapshotInfo
		restore  plancache.LoadStats
		restored bool
	}
}

// serveScratch is the reusable per-Optimize state of the serve path: the
// canonicalizer's refinement scratch and the cache-key buffer. Everything in
// it is overwritten by the next use and must not be referenced after the
// scratch is returned to the pool.
type serveScratch struct {
	canon canon.Canonicalizer
	key   []byte
}

// New returns an Engine with the given options.
func New(opts EngineOptions) *Engine {
	e := &Engine{
		arena:   core.NewArena(opts.ArenaBytes),
		quantum: opts.SelectivityQuantum,
	}
	switch {
	case opts.QuarantineThreshold > 0:
		e.quarThreshold = opts.QuarantineThreshold
	case opts.QuarantineThreshold == 0:
		e.quarThreshold = DefaultQuarantineThreshold
	}
	e.quar.strikes = make(map[string]int)
	e.scratch.New = func() any { return new(serveScratch) }
	if !opts.DisableCache {
		e.cache = plancache.New(opts.CacheBytes, opts.CacheShards)
	}
	return e
}

// defaultEngine backs the package-level one-shot API. Its plan cache is
// disabled — Query.Optimize has always re-optimized every call, and counters
// and threshold-pass behavior are part of that contract — but its arena
// still pools DP tables across calls, which is semantically invisible.
var defaultEngine = sync.OnceValue(func() *Engine {
	return New(EngineOptions{DisableCache: true})
})

// Default returns the shared engine behind Query.Optimize and the other
// package-level entry points.
func Default() *Engine { return defaultEngine() }

// EngineStats is a point-in-time snapshot of an engine's reuse layers and
// crash-safety counters.
type EngineStats struct {
	// Cache aggregates the plan cache's shards; zero-valued when the cache
	// is disabled.
	Cache plancache.Stats
	// Arena describes the DP-table pool. Arena.Live is the number of tables
	// currently checked out — 0 whenever no optimization is in flight.
	Arena core.ArenaStats
	// Executions counts OptimizeAndExecute calls served; Reopts counts
	// adaptive re-optimization events observed across them; PlanDownranks
	// counts cached entries demoted because execution replanned away from
	// their estimates.
	Executions    uint64
	Reopts        uint64
	PlanDownranks uint64
	// PanicsRecovered counts optimizer panics converted to *InternalError at
	// the engine boundary; QuarantinedShapes is how many query shapes have
	// hit the quarantine threshold and are being refused.
	PanicsRecovered   uint64
	QuarantinedShapes int
	// LastSnapshot describes the most recent successful WriteSnapshot
	// (zero-valued if none). Restore is the outcome of LoadSnapshot;
	// Restored says whether one ran.
	LastSnapshot SnapshotInfo
	Restore      SnapshotLoadStats
	Restored     bool
}

// Stats snapshots the engine's cache, arena, panic, quarantine, and snapshot
// counters.
func (e *Engine) Stats() EngineStats {
	var st EngineStats
	if e.cache != nil {
		st.Cache = e.cache.Snapshot()
	}
	st.Arena = e.arena.Stats()
	st.Executions = e.execs.Load()
	st.Reopts = e.reopts.Load()
	st.PlanDownranks = e.downranks.Load()
	st.PanicsRecovered = e.panics.Load()
	e.quar.mu.Lock()
	st.QuarantinedShapes = e.quar.quarantined
	e.quar.mu.Unlock()
	e.snap.mu.Lock()
	st.LastSnapshot = e.snap.last
	st.Restore = e.snap.restore
	st.Restored = e.snap.restored
	e.snap.mu.Unlock()
	return st
}

// Optimize runs Algorithm blitzsplit over the query and returns the optimal
// bushy plan, consulting the engine's plan cache first: if an isomorphic
// query (same shape under some relation renumbering, per internal/canon) was
// optimized before, its plan is rewritten to this query's numbering and
// returned with Result.Cached set — bit-identical cost, cardinality and plan
// shape to what a cold run would produce (given an exact, unquantized
// cache). Only full exhaustive optima are cached; degraded ladder results
// are returned but never stored.
//
// ctx bounds the run like WithContext (a WithContext option takes
// precedence); nil means no context budget. Budgets govern the cold path —
// a cache hit costs microseconds and is served even when a cold run would
// have been refused by WithMemoryBudget, since it allocates no table.
//
// A panic anywhere below this boundary — an optimizer bug, or an injected
// fault — is recovered and returned as an *InternalError rather than
// crashing the caller; a shape that panics repeatedly is quarantined (see
// EngineOptions.QuarantineThreshold).
func (e *Engine) Optimize(ctx context.Context, q *Query, options ...Option) (r *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, e.recordPanic(v, "")
		}
	}()
	cfg, err := newConfig(options)
	if err != nil {
		return nil, err
	}
	if cfg.ctx == nil {
		cfg.ctx = ctx
	}
	cq, err := q.build()
	if err != nil {
		return nil, err
	}
	return e.optimizeQuery(cq, cfg, q.names())
}

// optimizeQuery is the engine's spine: cache lookup, cold optimization of
// the canonical query on a miss, store, and relabeling back to the caller's
// relation numbering.
func (e *Engine) optimizeQuery(cq core.Query, cfg config, names []string) (*Result, error) {
	// The facade result never exposes the DP table; discard-to-arena keeps
	// the 2^n columns pooled instead of riding along until the next GC.
	cfg.opts.DiscardTable = true
	cfg.opts.Arena = e.arena
	if e.cache == nil || cq.Estimator != nil {
		o, err := e.run(cq, cfg)
		if err != nil {
			return nil, err
		}
		return cfg.finish(o, names, cq), nil
	}
	sc := e.scratch.Get().(*serveScratch)
	if err := sc.canon.Canonicalize(cq, canon.Options{SelectivityQuantum: e.quantum}); err != nil {
		e.scratch.Put(sc)
		return nil, err
	}
	// Resolve Auto to a concrete enumerator before the key is built: CCP and
	// blitz search different plan spaces, so the resolved strategy must be
	// part of the cache key, and an explicit-CCP eligibility error must
	// surface on hits exactly as a cold run would report it. Connectivity
	// comes memoized from the canonicalization pass (no graph walk; cache
	// hits stay allocation-free); the remaining eligibility bits mirror
	// core's ccpEligible — the estimator case is excluded by this branch.
	eligible := sc.canon.Connected() && !cfg.opts.LeftDeep &&
		!cfg.opts.DisableNestedIfs && !cfg.opts.DescendingSubsets
	enum, err := cfg.opts.ResolveEnumerator(eligible)
	if err != nil {
		e.scratch.Put(sc)
		return nil, err
	}
	cfg.opts.Enumerator = enum
	sc.key = appendCacheKey(sc.key[:0], sc.canon.Fingerprint(), cfg.opts)
	// A shape that has panicked the optimizer K times is refused before the
	// cache is consulted: a quarantined shape must never serve a stale hit or
	// re-run the crashing search.
	if strikes, out := e.quarantineStrikes(sc.key); out {
		e.scratch.Put(sc)
		return nil, &QuarantineError{Strikes: strikes}
	}
	if ent, ok := e.cache.GetBytes(sc.key); ok {
		// The hit path runs entirely out of scratch: the relabeled plan (one
		// slab allocation) is the only state that outlives it. The outcome is
		// a local — finish only reads it, so it never escapes to the heap.
		o := outcome{
			plan:     canon.RelabelPlan(ent.Plan, sc.canon.ToOrig()),
			cost:     ent.Cost,
			card:     ent.Cardinality,
			counters: ent.Counters,
			mode:     ModeExhaustive,
			cached:   true,
		}
		e.scratch.Put(sc)
		e.reanchor(&o, cq, cfg)
		return cfg.finish(&o, names, cq), nil
	}
	// Miss: materialize the canonical result off the scratch before releasing
	// it — the cold run below may run for seconds and must not pin (or race
	// with another Optimize over) the pooled buffers.
	key := string(sc.key)
	cn := sc.canon.Canonical()
	e.scratch.Put(sc)
	// Optimize the canonical query, not the caller's labeling, so the stored
	// entry — and therefore every future hit, after relabeling — is
	// bit-identical to this cold result.
	o, err := e.runCold(cn.Query(), cfg, key)
	if err != nil {
		return nil, err
	}
	if o.mode == ModeExhaustive {
		// Only the true optimum is worth serving to every isomorphic query;
		// degraded ladder plans reflect one call's budget, not the query.
		e.cache.Put(key, plancache.Entry{
			Plan:        o.plan,
			Cost:        o.cost,
			Cardinality: o.card,
			Counters:    o.counters,
		})
	}
	o.plan = canon.RelabelPlan(o.plan, cn.ToOrig)
	e.reanchor(o, cq, cfg)
	return cfg.finish(o, names, cq), nil
}

// reanchor recomputes a canonical-query outcome's cardinalities and costs
// against the caller's actual query when selectivity quantization is on: the
// cached plan shape was optimized for the quantized selectivities, but the
// numbers the caller sees must be consistent with the query they asked about
// (Result.Verify depends on it). With exact caching the canonical numbers
// are already bit-correct and are left untouched.
func (e *Engine) reanchor(o *outcome, cq core.Query, cfg config) {
	if e.quantum <= 0 || cq.Graph == nil {
		return
	}
	o.card = o.plan.RecomputeCards(cq.Graph, cq.Cards)
	o.cost = o.plan.RecomputeCost(cfg.model())
}

// runCold is run with the panic boundary that feeds quarantine: a panic in
// the cold search is converted to *InternalError here, where the cache key is
// still known, so the strike lands on the exact shape that crashed.
func (e *Engine) runCold(cq core.Query, cfg config, key string) (o *outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			o, err = nil, e.recordPanic(v, key)
		}
	}()
	return e.run(cq, cfg)
}

// run executes one governed cold optimization: the plain exhaustive search,
// or the degradation ladder under WithDeadlineLadder.
func (e *Engine) run(cq core.Query, cfg config) (*outcome, error) {
	faultinject.Inject(faultinject.EngineOptimize)
	ctx, cancel := cfg.budgetContext()
	defer cancel()
	if !cfg.ladder {
		opts := cfg.opts
		opts.Ctx = ctx
		res, err := core.Optimize(cq, opts)
		if err != nil {
			return nil, err
		}
		return &outcome{
			plan:     res.Plan,
			cost:     res.Cost,
			card:     res.Cardinality,
			counters: res.Counters,
			mode:     ModeExhaustive,
		}, nil
	}
	return e.runLadder(cq, cfg, ctx)
}

// appendCacheKey extends the canonical fingerprint with every option that
// changes which plan is optimal: the cost model, the left-deep restriction,
// the resolved enumerator (CCP searches only the Cartesian-product-free
// space, so its optimum can differ from the blitz scan's — Auto is resolved
// to a concrete strategy before the key is built), and the overflow limit.
// Deliberately absent: CostThreshold (the threshold
// identity — a thresholded run returns the same plan or fails, though its
// pass counters differ, so a hit's Counters describe the run that populated
// the entry), Parallelism (the parallel fill is bit-identical), and the
// budget options (they decide whether a cold run finishes, never which plan
// wins). The key is appended into dst so the serve path can reuse one buffer
// per lookup; only custom models allocate (via fmt).
//
// The key opens with uvarint(len(fp)) so the fingerprint can be recovered
// from a stored key (keyFingerprint) — the cluster layer shards cache
// residency by fingerprint and must classify snapshot entries by owner
// without re-canonicalizing anything.
func appendCacheKey(dst []byte, fp []byte, opts core.Options) []byte {
	b := binary.AppendUvarint(dst, uint64(len(fp)))
	b = append(b, fp...)
	b = append(b, 0)
	if opts.LeftDeep {
		b = append(b, 'L')
	} else {
		b = append(b, 'B')
	}
	if opts.Enumerator == core.EnumeratorCCP {
		b = append(b, 'C')
	} else {
		b = append(b, 'X')
	}
	limit := opts.OverflowLimit
	if limit <= 0 {
		limit = math.MaxFloat32
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(limit))
	m := opts.Model
	if m == nil {
		b = append(b, "naive"...)
	} else {
		// The dynamic type plus its printed fields distinguish identically
		// named but differently parameterized custom models. Two distinct
		// values of a semantically equal model can at worst miss, never
		// alias.
		b = fmt.Appendf(b, "%T|%+v", m, m)
	}
	return b
}

// keyFingerprint recovers the canonical fingerprint embedded in a cache key
// by appendCacheKey. ok is false when the key does not parse — an entry
// restored from a snapshot written before the length prefix existed. Such
// entries are merely unclassifiable (they can never match a live lookup
// either), never misattributed.
func keyFingerprint(key []byte) (fp []byte, ok bool) {
	size, n := binary.Uvarint(key)
	if n <= 0 || size > uint64(len(key)-n) {
		return nil, false
	}
	return key[n : n+int(size)], true
}

// Optimize runs Algorithm blitzsplit over the query and returns the optimal
// bushy plan. With a budget (WithTimeout, WithContext, WithMemoryBudget) the
// run is governed: it stops cooperatively when the budget runs out, and —
// under WithDeadlineLadder — degrades through threshold-pruned search,
// bounded IDP, and a greedy floor instead of failing, recording the rung in
// Result.Mode. It is Engine.Optimize on the shared Default engine, whose
// plan cache is disabled; servers wanting cached plans construct their own
// Engine with New.
func (q *Query) Optimize(options ...Option) (*Result, error) {
	return Default().Optimize(nil, q, options...)
}

// OptimizeWithEstimator runs blitzsplit over base cardinalities with a
// custom cardinality estimator instead of a binary join graph. Estimator
// queries bypass the engine's plan cache: estimator state is opaque, so no
// canonical fingerprint exists for it.
func (e *Engine) OptimizeWithEstimator(ctx context.Context, cards []float64, est Estimator, options ...Option) (r *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, e.recordPanic(v, "")
		}
	}()
	if est == nil {
		return nil, errors.New("blitzsplit: nil estimator")
	}
	cfg, err := newConfig(options)
	if err != nil {
		return nil, err
	}
	if cfg.ladder {
		// The fallback rungs (IDP, greedy) estimate cardinalities from a
		// binary join graph; a custom estimator has none to offer them.
		return nil, errors.New("blitzsplit: WithDeadlineLadder is not supported with a custom estimator")
	}
	if cfg.ctx == nil {
		cfg.ctx = ctx
	}
	cfg.opts.DiscardTable = true
	cfg.opts.Arena = e.arena
	o, err := e.run(core.Query{Cards: cards, Estimator: est}, cfg)
	if err != nil {
		return nil, err
	}
	return cfg.finish(o, nil, core.Query{Cards: cards, Estimator: est}), nil
}

// OptimizeWithEstimator is Engine.OptimizeWithEstimator on the Default
// engine.
func OptimizeWithEstimator(cards []float64, est Estimator, options ...Option) (*Result, error) {
	return Default().OptimizeWithEstimator(nil, cards, est, options...)
}

// OptimizeLarge optimizes queries beyond exhaustive reach (n into the 20s)
// with iterative dynamic programming of the given block size followed by
// randomized local-search polishing — the hybrid direction the paper's §7
// sketches. blockSize ≤ 0 selects 10. The returned Result carries no
// optimizer counters (the hybrid does not run the full blitzsplit table) and
// is never cached. Plans are near-optimal, not guaranteed optimal; with
// blockSize ≥ the relation count the result is the exact optimum.
func (e *Engine) OptimizeLarge(ctx context.Context, q *Query, blockSize int, options ...Option) (r *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, e.recordPanic(v, "")
		}
	}()
	cfg, err := newConfig(options)
	if err != nil {
		return nil, err
	}
	if cfg.ctx == nil {
		cfg.ctx = ctx
	}
	cq, err := q.build()
	if err != nil {
		return nil, err
	}
	rctx, cancel := cfg.budgetContext()
	defer cancel()
	res, err := hybrid.ChainedLocal(cq.Cards, cq.Graph, cfg.model(), hybrid.IDPOptions{
		K:          blockSize,
		Stochastic: baseline.StochasticOptions{Seed: 1},
		Ctx:        rctx,
		Arena:      e.arena,
		Enumerator: cfg.opts.Enumerator,
	})
	if err != nil {
		return nil, err
	}
	o := &outcome{plan: res.Plan, cost: res.Cost, card: res.Plan.Card, mode: ModeIDP}
	r = cfg.finish(o, q.cat.Names(), cq)
	// The caller asked for the hybrid; Mode records it, but nothing was
	// degraded away from.
	r.Degraded = false
	return r, nil
}

// OptimizeLarge is Engine.OptimizeLarge on the Default engine.
func (q *Query) OptimizeLarge(blockSize int, options ...Option) (*Result, error) {
	return Default().OptimizeLarge(nil, q, blockSize, options...)
}
