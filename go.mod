module blitzsplit

go 1.22
