package blitzsplit

import (
	"errors"
	"fmt"
	"testing"

	"blitzsplit/internal/engine"
	"blitzsplit/internal/faultinject"
)

// execChainQuery builds an n-relation chain with per-join selectivity 1/card
// so intermediate results stay flat.
func execChainQuery(t testing.TB, n int, card float64) *Query {
	t.Helper()
	q := NewQuery()
	for i := 0; i < n; i++ {
		q.MustAddRelation(fmt.Sprintf("R%d", i), card)
	}
	for i := 0; i+1 < n; i++ {
		q.MustJoin(fmt.Sprintf("R%d", i), fmt.Sprintf("R%d", i+1), 1/card)
	}
	return q
}

// skewedPair returns a query whose first join selectivity is wildly
// underestimated, plus a database synthesized from the true statistics — the
// adaptive executor's bread and butter.
func skewedPair(t testing.TB) (*Query, *Database) {
	t.Helper()
	cards := []float64{2000, 2000, 600, 600, 600}
	mk := func(firstSel float64) *Query {
		q := NewQuery()
		for i, c := range cards {
			q.MustAddRelation(fmt.Sprintf("R%d", i), c)
		}
		sels := []float64{firstSel, 1.0 / 600, 1.0 / 600, 1.0 / 600}
		for i := 0; i+1 < len(cards); i++ {
			q.MustJoin(fmt.Sprintf("R%d", i), fmt.Sprintf("R%d", i+1), sels[i])
		}
		return q
	}
	lie := mk(1.0 / 4_000_000)
	db, err := mk(1.0 / 40).Synthesize(42)
	if err != nil {
		t.Fatal(err)
	}
	return lie, db
}

// TestOptimizeAndExecute: the facade executes the optimized plan and the
// vectorized row count matches the row engine under every algorithm name.
func TestOptimizeAndExecute(t *testing.T) {
	e := New(EngineOptions{})
	q := execChainQuery(t, 6, 200)
	db, err := q.Synthesize(7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Count(res.Plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"", "hash", "sortmerge", "nestedloops"} {
		er, err := e.OptimizeAndExecute(nil, q, db, ExecuteOptions{Algorithm: alg, CollectOps: true})
		if err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
		if er.Rows != int64(want) {
			t.Errorf("%q: Rows = %d, want %d", alg, er.Rows, want)
		}
		if er.Exec.Rows != er.Rows || er.Exec.Joins != 5 || len(er.Exec.Ops) == 0 {
			t.Errorf("%q: Exec = %+v", alg, er.Exec)
		}
		if er.ExecutedPlan == nil || er.Result == nil || er.Downranked {
			t.Errorf("%q: result wiring = %+v", alg, er)
		}
	}
	// The row-engine baseline agrees too.
	er, err := e.OptimizeAndExecute(nil, q, db, ExecuteOptions{RowEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	if er.Rows != int64(want) {
		t.Errorf("row engine: Rows = %d, want %d", er.Rows, want)
	}
	if got := e.Stats().Executions; got != 5 {
		t.Errorf("Executions = %d, want 5", got)
	}
}

func TestOptimizeAndExecuteErrors(t *testing.T) {
	e := New(EngineOptions{})
	q := execChainQuery(t, 3, 100)
	db, err := q.Synthesize(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OptimizeAndExecute(nil, q, nil, ExecuteOptions{}); err == nil {
		t.Error("nil database: no error")
	}
	if _, err := e.OptimizeAndExecute(nil, q, db, ExecuteOptions{Algorithm: "mergesort"}); err == nil {
		t.Error("unknown algorithm: no error")
	}
	if _, err := e.OptimizeAndExecute(nil, q, db, ExecuteOptions{MaxRows: 1}); !errors.Is(err, ErrRowLimit) {
		t.Errorf("MaxRows 1: err = %v, want ErrRowLimit", err)
	}
	if got := e.Stats().Executions; got != 0 {
		t.Errorf("Executions after failures = %d, want 0", got)
	}
}

// TestOptimizeAndExecuteAdaptiveDownrank: a cached plan whose estimates lie
// triggers a mid-query replan, and the engine demotes the stale cache entry.
func TestOptimizeAndExecuteAdaptiveDownrank(t *testing.T) {
	e := New(EngineOptions{})
	lie, db := skewedPair(t)

	// Static execution under the same skew, for the intermediate-row bar.
	static, err := e.OptimizeAndExecute(nil, lie, db, ExecuteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Second serve comes from the cache; adaptive execution must replan.
	er, err := e.OptimizeAndExecute(nil, lie, db, ExecuteOptions{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !er.Cached {
		t.Fatal("second serve not cached — downrank path untested")
	}
	if len(er.Reopts) == 0 {
		t.Fatal("no reopt events despite injected skew")
	}
	replanned := false
	for _, ev := range er.Reopts {
		if ev.Replanned {
			replanned = true
		}
		if ev.Err != "" {
			t.Errorf("reopt error: %s", ev.Err)
		}
	}
	if !replanned {
		t.Fatal("reopt events recorded but none replanned")
	}
	if er.Rows != static.Rows {
		t.Errorf("adaptive Rows = %d, static = %d", er.Rows, static.Rows)
	}
	if er.Exec.IntermediateRows >= static.Exec.IntermediateRows {
		t.Errorf("adaptive intermediate rows %d, static %d — no reduction",
			er.Exec.IntermediateRows, static.Exec.IntermediateRows)
	}
	if !er.Downranked {
		t.Error("replanned cached serve not downranked")
	}
	st := e.Stats()
	if st.Reopts == 0 || st.PlanDownranks != 1 || st.Cache.Downranks != 1 {
		t.Errorf("stats = {Reopts:%d PlanDownranks:%d Cache.Downranks:%d}",
			st.Reopts, st.PlanDownranks, st.Cache.Downranks)
	}
	if err := er.ExecutedPlan.Validate(); err != nil {
		t.Errorf("executed plan invalid: %v", err)
	}
}

// TestExecutePanicQuarantine: executor panics are recovered as
// *InternalError and strike the query shape toward the same quarantine the
// optimizer uses.
func TestExecutePanicQuarantine(t *testing.T) {
	defer faultinject.Reset()
	e := New(EngineOptions{})
	q := execChainQuery(t, 4, 50)
	db, err := q.Synthesize(3)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(faultinject.ExecRun, func() { panic("exec kaboom") })
	for i := 0; i < DefaultQuarantineThreshold; i++ {
		var ie *InternalError
		if _, err := e.OptimizeAndExecute(nil, q, db, ExecuteOptions{}); !errors.As(err, &ie) {
			t.Fatalf("strike %d: err = %v, want *InternalError", i+1, err)
		}
	}
	faultinject.Reset()
	// The shape is quarantined for optimization and execution alike.
	var qe *QuarantineError
	if _, err := e.Optimize(nil, q); !errors.As(err, &qe) {
		t.Fatalf("post-strikes Optimize err = %v, want *QuarantineError", err)
	}
	if got := e.Stats().PanicsRecovered; got != uint64(DefaultQuarantineThreshold) {
		t.Errorf("PanicsRecovered = %d, want %d", got, DefaultQuarantineThreshold)
	}
	// Other shapes keep executing.
	q2 := execChainQuery(t, 3, 60)
	db2, err := q2.Synthesize(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.OptimizeAndExecute(nil, q2, db2, ExecuteOptions{}); err != nil {
		t.Errorf("unrelated shape after quarantine: %v", err)
	}
}

// TestPackageExecuteVectorized: the package-level Execute convenience now
// rides the vectorized engine and still matches the row engine.
func TestPackageExecuteVectorized(t *testing.T) {
	q := execChainQuery(t, 5, 120)
	db, err := q.Synthesize(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(db, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Count(res.Plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Execute = %d, row engine = %d", got, want)
	}
}
