package blitzsplit

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// permutedQuery builds the same logical query under a permuted relation
// numbering: relation i of the base ordering is inserted at position
// perm[i]. Costs, cardinalities and (relabeled) plans must not depend on
// this ordering — the invariance the plan cache's soundness rests on.
func permutedQuery(t testing.TB, cards []float64, edges [][3]float64, perm []int) *Query {
	t.Helper()
	n := len(cards)
	q := NewQuery()
	inv := make([]int, n) // inv[pos] = base index inserted at pos
	for i, p := range perm {
		inv[p] = i
	}
	for pos := 0; pos < n; pos++ {
		i := inv[pos]
		q.MustAddRelation(fmt.Sprintf("R%d", i), cards[i])
	}
	for _, e := range edges {
		q.MustJoin(fmt.Sprintf("R%d", int(e[0])), fmt.Sprintf("R%d", int(e[1])), e[2])
	}
	return q
}

// starQuery returns cards/edges for a star join with distinct cardinalities
// (so canonicalization is Exact and permuted resubmissions must all hit).
func starQuery(n int) ([]float64, [][3]float64) {
	cards := make([]float64, n)
	cards[0] = 1e6
	var edges [][3]float64
	for i := 1; i < n; i++ {
		cards[i] = float64(1000 * i)
		edges = append(edges, [3]float64{0, float64(i), 1 / float64(1000*i)})
	}
	return cards, edges
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// A warm engine must serve permuted resubmissions from the cache,
// bit-identical — cost, cardinality, counters — to the cold run that
// populated the entry, and the served plan must pass Verify against the
// resubmitted labeling.
func TestEngineCacheHitBitIdentical(t *testing.T) {
	const n = 8
	cards, edges := starQuery(n)
	eng := New(EngineOptions{})

	cold, err := eng.Optimize(nil, permutedQuery(t, cards, edges, identityPerm(n)))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first submission cannot be a cache hit")
	}
	if err := cold.Verify(); err != nil {
		t.Fatalf("cold result: %v", err)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		q := permutedQuery(t, cards, edges, rng.Perm(n))
		res, err := eng.Optimize(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("trial %d: permuted resubmission missed the cache", trial)
		}
		if math.Float64bits(res.Cost) != math.Float64bits(cold.Cost) {
			t.Fatalf("trial %d: hit cost %v ≠ cold cost %v", trial, res.Cost, cold.Cost)
		}
		if math.Float64bits(res.Cardinality) != math.Float64bits(cold.Cardinality) {
			t.Fatalf("trial %d: hit cardinality diverged", trial)
		}
		if res.Counters != cold.Counters {
			t.Fatalf("trial %d: hit counters %+v ≠ cold %+v", trial, res.Counters, cold.Counters)
		}
		if res.Mode != ModeExhaustive || res.Degraded {
			t.Fatalf("trial %d: hit mode %q degraded=%v", trial, res.Mode, res.Degraded)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("trial %d: served plan fails verification: %v", trial, err)
		}
	}

	st := eng.Stats()
	if st.Cache.Hits != 10 || st.Cache.Misses != 1 || st.Cache.Puts != 1 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	if st.Arena.Live != 0 {
		t.Fatalf("engine leaked %d tables", st.Arena.Live)
	}
}

// Served plans are deep copies: mutating a hit's plan must not corrupt the
// cache for later hits.
func TestEngineCacheHitsAreIsolated(t *testing.T) {
	cards, edges := starQuery(6)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(6))
	first, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	ref := first.Cost
	hit1, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	hit1.Plan.Card = -1 // vandalize the served copy
	hit1.Plan.Left, hit1.Plan.Right = nil, nil
	hit2, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2.Cached || hit2.Cost != ref {
		t.Fatal("cache entry was corrupted through a served plan")
	}
	if err := hit2.Verify(); err != nil {
		t.Fatalf("post-vandalism hit: %v", err)
	}
}

// The package-level one-shot API rides the default engine, whose cache is
// disabled: repeated optimizations never report Cached.
func TestDefaultEngineDoesNotCache(t *testing.T) {
	cards, edges := starQuery(5)
	q := permutedQuery(t, cards, edges, identityPerm(5))
	for i := 0; i < 2; i++ {
		res, err := q.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("default engine must not cache")
		}
	}
	if st := Default().Stats(); st.Cache.Capacity != 0 {
		t.Fatalf("default engine has a live cache: %+v", st.Cache)
	}
}

// Distinct option sets must not alias in the cache even for the same query
// shape: left-deep and bushy optima differ, and different cost models score
// differently.
func TestEngineCacheKeySeparatesOptions(t *testing.T) {
	cards, edges := starQuery(7)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(7))
	bushy, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := eng.Optimize(nil, q, WithLeftDeep())
	if err != nil {
		t.Fatal(err)
	}
	if ld.Cached {
		t.Fatal("left-deep run must not hit the bushy entry")
	}
	dnl, err := eng.Optimize(nil, q, WithCostModel("dnl"))
	if err != nil {
		t.Fatal(err)
	}
	if dnl.Cached {
		t.Fatal("dnl-model run must not hit the naive entry")
	}
	_ = bushy
	// Resubmitting each variant now hits its own entry.
	for _, opts := range [][]Option{nil, {WithLeftDeep()}, {WithCostModel("dnl")}} {
		res, err := eng.Optimize(nil, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("variant %v should hit its own entry", opts)
		}
	}
}

// Estimator queries are uncacheable and must bypass the cache silently.
func TestEngineEstimatorBypassesCache(t *testing.T) {
	eng := New(EngineOptions{})
	sch := NewSchema(3)
	sch.MustAddColumn(0, "k", 100)
	sch.MustAddColumn(1, "k", 100)
	sch.MustAddColumn(1, "j", 50)
	sch.MustAddColumn(2, "j", 50)
	sch.MustEquate(0, "k", 1, "k")
	sch.MustEquate(1, "j", 2, "j")
	for i := 0; i < 2; i++ {
		res, err := eng.OptimizeWithEstimator(nil, []float64{100, 200, 300}, sch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("estimator result cannot be cached")
		}
	}
	if st := eng.Stats(); st.Cache.Hits+st.Cache.Misses+st.Cache.Puts != 0 {
		t.Fatalf("estimator runs touched the cache: %+v", st.Cache)
	}
}

// Degraded ladder outcomes reflect one call's budget and must never be
// stored; a later unconstrained call must re-optimize and cache the true
// optimum.
func TestEngineDoesNotCacheDegradedPlans(t *testing.T) {
	cards, edges := starQuery(12)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(12))
	res, err := eng.Optimize(nil, q, WithTimeout(1*time.Nanosecond), WithDeadlineLadder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode == ModeExhaustive {
		t.Skip("machine finished exhaustive search inside 1ns; cannot exercise degradation")
	}
	full, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cached {
		t.Fatal("degraded plan leaked into the cache")
	}
	if full.Mode != ModeExhaustive {
		t.Fatalf("unconstrained run degraded: %q", full.Mode)
	}
	if full.Cost > res.Cost {
		t.Fatalf("exhaustive optimum %v worse than ladder plan %v", full.Cost, res.Cost)
	}
}

// Ladder runs cut down by a deadline must return every rung's scratch table
// to the arena — the leak this PR's arena plumbing fixes. Run with -race.
func TestEngineLadderLeakOnCancel(t *testing.T) {
	cards, edges := starQuery(13)
	eng := New(EngineOptions{})
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		q := permutedQuery(t, cards, edges, rng.Perm(13))
		budget := time.Duration(50+rng.Intn(2000)) * time.Microsecond
		res, err := eng.Optimize(nil, q, WithTimeout(budget), WithDeadlineLadder())
		if err != nil {
			t.Fatalf("trial %d: ladder must always produce a plan: %v", trial, err)
		}
		if verr := res.Verify(); verr != nil {
			t.Fatalf("trial %d (%s): %v", trial, res.Mode, verr)
		}
	}
	// Explicit cancellation aborts with an error — still no leak. A fresh
	// engine, because on the warm one the cache (correctly) serves a hit
	// before the ladder would even start.
	coldEng := New(EngineOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coldEng.Optimize(ctx, permutedQuery(t, cards, edges, identityPerm(13)),
		WithDeadlineLadder()); err == nil {
		t.Fatal("explicitly cancelled ladder should fail")
	}
	for i, e := range []*Engine{eng, coldEng} {
		if st := e.Stats(); st.Arena.Live != 0 {
			t.Fatalf("engine %d: ladder leaked %d tables", i, st.Arena.Live)
		}
	}
}

// TestEngineConcurrentStress hammers one engine from many goroutines with a
// mixed workload of query sizes and repeated shapes: the run must be
// race-clean, cache counters must account for every single request, the
// arena must end with zero live tables, and every response for a given
// shape must agree bitwise with the first response for that shape.
func TestEngineConcurrentStress(t *testing.T) {
	const (
		workers = 8
		perW    = 30
		shapes  = 12
	)
	type shapeSpec struct {
		cards []float64
		edges [][3]float64
	}
	rng := rand.New(rand.NewSource(17))
	specs := make([]shapeSpec, shapes)
	for s := range specs {
		n := 4 + rng.Intn(7) // n ∈ [4, 10]
		if s == 0 {
			n = 14 // one heavyweight shape
		}
		cards := make([]float64, n)
		for i := range cards {
			cards[i] = math.Trunc(rng.Float64()*1e5) + 2
		}
		var edges [][3]float64
		for i := 1; i < n; i++ {
			edges = append(edges, [3]float64{float64(rng.Intn(i)), float64(i),
				math.Exp2(-1 - 20*rng.Float64())})
		}
		specs[s] = shapeSpec{cards, edges}
	}

	eng := New(EngineOptions{})
	var (
		mu       sync.Mutex
		refCost  = make(map[int]float64)
		requests uint64
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perW; i++ {
				s := wrng.Intn(shapes)
				sp := specs[s]
				q := permutedQuery(t, sp.cards, sp.edges, wrng.Perm(len(sp.cards)))
				res, err := eng.Optimize(nil, q)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				mu.Lock()
				requests++
				if ref, ok := refCost[s]; ok {
					if math.Float64bits(res.Cost) != math.Float64bits(ref) {
						mu.Unlock()
						errs <- fmt.Errorf("shape %d: cost %v diverged from %v", s, res.Cost, ref)
						return
					}
				} else {
					refCost[s] = res.Cost
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Cache.Hits+st.Cache.Misses != requests {
		t.Fatalf("hits %d + misses %d ≠ requests %d", st.Cache.Hits, st.Cache.Misses, requests)
	}
	if st.Cache.Puts != st.Cache.Misses {
		t.Fatalf("every miss must store exactly once: %+v", st.Cache)
	}
	// Shapes with non-Exact canonicalization could miss more than once under
	// permutation, but every shape must have been stored at least once and at
	// most... once per distinct fingerprint. At minimum: misses ≥ shapes.
	if st.Cache.Misses < shapes {
		t.Fatalf("only %d misses for %d distinct shapes", st.Cache.Misses, shapes)
	}
	if st.Arena.Live != 0 {
		t.Fatalf("stress leaked %d tables", st.Arena.Live)
	}
	// Arena accounting must balance to the unit: every checkout returned, and
	// the Live gauge is definitionally their difference.
	if st.Arena.Gets != st.Arena.Puts {
		t.Fatalf("arena gets %d ≠ puts %d after quiescence", st.Arena.Gets, st.Arena.Puts)
	}
	if st.Arena.Gets < st.Cache.Misses {
		t.Fatalf("arena gets %d < cache misses %d: every cold run fills a table", st.Arena.Gets, st.Cache.Misses)
	}
	// With hundreds of same-sized cold runs the pool must actually recycle.
	if st.Arena.Reuses == 0 {
		t.Fatal("arena never reused a pooled table across the stress run")
	}
	// Cache footprint gauges must be consistent with the stored entries.
	if st.Cache.Entries <= 0 || st.Cache.Bytes == 0 {
		t.Fatalf("cache footprint degenerate after %d puts: %+v", st.Cache.Puts, st.Cache)
	}
	if st.Cache.Evictions != 0 && st.Cache.Bytes > st.Cache.Capacity {
		t.Fatalf("cache over capacity despite evictions: %+v", st.Cache)
	}
}

// Under a selectivity quantum, noisy selectivity variants of one shape share
// a cache entry, and the served numbers are re-anchored on the caller's
// actual query so Verify still passes.
func TestEngineQuantizedServing(t *testing.T) {
	eng := New(EngineOptions{SelectivityQuantum: 0.5})
	base := func(sel float64) *Query {
		q := NewQuery()
		q.MustAddRelation("a", 1000)
		q.MustAddRelation("b", 50000)
		q.MustAddRelation("c", 700)
		q.MustJoin("a", "b", sel)
		q.MustJoin("b", "c", 0.001)
		return q
	}
	cold, err := eng.Optimize(nil, base(0.0100))
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Verify(); err != nil {
		t.Fatalf("quantized cold run: %v", err)
	}
	warm, err := eng.Optimize(nil, base(0.0103)) // same log2 bucket
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("noise-level selectivity change should hit under quantization")
	}
	if err := warm.Verify(); err != nil {
		t.Fatalf("re-anchored hit fails verification: %v", err)
	}
	if warm.Cost == cold.Cost {
		t.Fatal("re-anchoring should reflect the caller's actual selectivity")
	}
}

// WithMemoryBudget refuses a cold run whose table exceeds the budget, but a
// cache hit allocates no table and is served anyway.
func TestEngineCacheHitExemptFromMemoryBudget(t *testing.T) {
	cards, edges := starQuery(12)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(12))
	if _, err := eng.Optimize(nil, q); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Optimize(nil, q, WithMemoryBudget(1024))
	if err != nil {
		t.Fatalf("hit should be exempt from the memory budget: %v", err)
	}
	if !res.Cached {
		t.Fatal("expected a cache hit")
	}
	// A fresh engine must still refuse the cold run under the same budget.
	cold := New(EngineOptions{})
	if _, err := cold.Optimize(nil, q, WithMemoryBudget(1024)); err == nil {
		t.Fatal("cold run should be refused by the memory budget")
	}
}

func BenchmarkEngineCacheHit(b *testing.B) {
	cards, edges := starQuery(12)
	eng := New(EngineOptions{})
	q := permutedQuery(b, cards, edges, identityPerm(12))
	if _, err := eng.Optimize(nil, q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Optimize(nil, q)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("benchmark must measure hits")
		}
	}
}

func BenchmarkEngineCacheCold(b *testing.B) {
	cards, edges := starQuery(12)
	eng := New(EngineOptions{DisableCache: true})
	q := permutedQuery(b, cards, edges, identityPerm(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Optimize(nil, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Repeated Join declarations on one relation pair are a conjunction: they
// fold into a single multiplicative selectivity at build time, bitwise
// independent of declaration order, and equivalent to declaring the product
// directly.
func TestDuplicateJoinFolding(t *testing.T) {
	build := func(sels ...float64) *Query {
		q := NewQuery()
		q.MustAddRelation("x", 1000)
		q.MustAddRelation("y", 2000)
		q.MustAddRelation("z", 500)
		for _, s := range sels {
			q.MustJoin("x", "y", s)
		}
		q.MustJoin("y", "z", 0.001)
		return q
	}
	a, err := build(0.5, 0.02, 0.1).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(0.1, 0.5, 0.02).Optimize() // same factors, shuffled
	if err != nil {
		t.Fatal(err)
	}
	c, err := build(0.5 * 0.02 * 0.1).Optimize() // pre-folded product
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]*Result{"shuffled": b, "prefolded": c} {
		if math.Float64bits(a.Cost) != math.Float64bits(other.Cost) {
			t.Fatalf("%s: cost %v ≠ %v", name, other.Cost, a.Cost)
		}
		if math.Float64bits(a.Cardinality) != math.Float64bits(other.Cardinality) {
			t.Fatalf("%s: cardinality diverged", name)
		}
		if !a.Plan.Equal(other.Plan) {
			t.Fatalf("%s: plan diverged", name)
		}
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	// Mixed orientations fold too: x⋈y and y⋈x address the same pair.
	q := NewQuery()
	q.MustAddRelation("x", 1000)
	q.MustAddRelation("y", 2000)
	q.MustAddRelation("z", 500)
	q.MustJoin("x", "y", 0.5)
	q.MustJoin("y", "x", 0.02)
	q.MustJoin("x", "y", 0.1)
	q.MustJoin("y", "z", 0.001)
	d, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(d.Cost) != math.Float64bits(a.Cost) {
		t.Fatal("orientation-mixed duplicates folded differently")
	}
	// An invalid selectivity among the duplicates is still rejected.
	bad := NewQuery()
	bad.MustAddRelation("x", 10)
	bad.MustAddRelation("y", 20)
	bad.MustJoin("x", "y", 0.5)
	bad.MustJoin("x", "y", 1.5)
	if _, err := bad.Optimize(); err == nil {
		t.Fatal("out-of-range duplicate selectivity accepted")
	}
}

// The serve hot path's allocation budget, asserted: once an entry is cached,
// Optimize on the same engine must perform O(1) small allocations — the
// relabeled plan slab, the Result, and nothing proportional to n beyond them.
// The pooled Canonicalizer scratch and the byte-keyed cache lookup are what
// keep WL refinement and the fingerprint off the per-hit heap.
func TestEngineCacheHitAllocs(t *testing.T) {
	const n = 12
	cards, edges := starQuery(n)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(n))
	if _, err := eng.Optimize(nil, q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		res, err := eng.Optimize(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatal("must measure the hit path")
		}
	})
	limit := 10.0
	if raceEnabled {
		// The race detector disables open-coded defers, so the panic-recovery
		// defer at the Optimize boundary is one extra heap allocation per call
		// under -race only; production builds open-code it for free.
		limit++
	}
	if allocs >= limit {
		t.Errorf("cache hit allocated %v times per op, want < %v", allocs, limit)
	}
}

// Eight goroutines hammer one Engine — and therefore one sync.Pool of
// Canonicalizer scratch — with permuted resubmissions of the same logical
// query. Every hit must be bit-identical to the cold reference: a pooled
// scratch object leaking state between borrowers would surface here as a
// diverging fingerprint (a spurious miss) or a corrupted relabeling (Verify
// failure). Run under -race by the Makefile's stress target.
func TestEngineCanonicalizerStress(t *testing.T) {
	const n, workers, reps = 10, 8, 40
	cards, edges := starQuery(n)
	eng := New(EngineOptions{})
	cold, err := eng.Optimize(nil, permutedQuery(t, cards, edges, identityPerm(n)))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*Query, 64)
	rng := rand.New(rand.NewSource(17))
	for i := range queries {
		queries[i] = permutedQuery(t, cards, edges, rng.Perm(n))
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				res, err := eng.Optimize(nil, queries[(w*reps+rep)%len(queries)])
				if err != nil {
					errs <- err
					return
				}
				if !res.Cached {
					errs <- fmt.Errorf("worker %d rep %d: fingerprint diverged (cache miss)", w, rep)
					return
				}
				if math.Float64bits(res.Cost) != math.Float64bits(cold.Cost) {
					errs <- fmt.Errorf("worker %d rep %d: cost %v ≠ %v", w, rep, res.Cost, cold.Cost)
					return
				}
				if err := res.Verify(); err != nil {
					errs <- fmt.Errorf("worker %d rep %d: served plan invalid: %v", w, rep, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := eng.Stats(); st.Cache.Misses != 1 {
		t.Errorf("expected exactly one miss (the cold fill), got %+v", st.Cache)
	}
}
