package blitzsplit

// Integration tests spanning multiple internal modules: the core optimizer
// against the independent baseline implementations on the paper's Appendix
// workloads, optimized plans executed on synthesized data, and the public
// API end to end.

import (
	"math"
	"testing"

	"blitzsplit/internal/baseline"
	"blitzsplit/internal/core"
	"blitzsplit/internal/cost"
	"blitzsplit/internal/engine"
	"blitzsplit/internal/joingraph"
	"blitzsplit/internal/workload"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// TestBlitzsplitMatchesOracleOnAppendixWorkloads: on every topology × model
// at n = 7 (oracle-feasible: 665 280 plans per oracle run), blitzsplit's
// optimum equals the exhaustive enumeration oracle. The chain/star
// topologies generalize below n=9; cycle+3 requires n ≥ 9 and is covered by
// the no-CP cross-checks below.
func TestBlitzsplitMatchesOracleOnAppendixWorkloads(t *testing.T) {
	n := 7
	topos := []joingraph.Topology{joingraph.TopoChain, joingraph.TopoStar, joingraph.TopoClique}
	for _, topo := range topos {
		for _, model := range cost.PaperModels() {
			for _, mean := range []float64{4.64, 464} {
				c := workload.AppendixCase(topo, model, mean, 0.5, n)
				res, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph},
					core.Options{Model: model})
				if err != nil {
					t.Fatalf("%s: %v", c.Name, err)
				}
				oracle, err := baseline.BruteForce(c.Cards, c.Graph, model)
				if err != nil {
					t.Fatalf("%s: oracle: %v", c.Name, err)
				}
				if relDiff(res.Cost, oracle.Cost) > 1e-9 {
					t.Errorf("%s: blitzsplit %v ≠ oracle %v", c.Name, res.Cost, oracle.Cost)
				}
			}
		}
	}
}

// TestBlitzsplitNeverWorseThanNoCPBaselines: with products allowed,
// blitzsplit's optimum is ≤ both no-product baselines on every Appendix
// configuration at n = 10.
func TestBlitzsplitNeverWorseThanNoCPBaselines(t *testing.T) {
	n := 10
	for _, topo := range []joingraph.Topology{joingraph.TopoChain, joingraph.TopoCyclePlus3, joingraph.TopoStar} {
		for _, model := range cost.PaperModels() {
			c := workload.AppendixCase(topo, model, 100, 0.75, n)
			res, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph},
				core.Options{Model: model})
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			noCP, err := baseline.BushyNoCP(c.Cards, c.Graph, model)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if res.Cost > noCP.Cost*(1+1e-9) {
				t.Errorf("%s: blitzsplit %v worse than no-CP %v", c.Name, res.Cost, noCP.Cost)
			}
			sel, err := baseline.SelingerLeftDeep(c.Cards, c.Graph, model, false)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if res.Cost > sel.Cost*(1+1e-9) {
				t.Errorf("%s: blitzsplit %v worse than Selinger %v", c.Name, res.Cost, sel.Cost)
			}
			// Left-deep blitzsplit (with products) ≤ Selinger (without).
			ld, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph},
				core.Options{Model: model, LeftDeep: true})
			if err != nil {
				t.Fatal(err)
			}
			if ld.Cost > sel.Cost*(1+1e-9) {
				t.Errorf("%s: left-deep blitzsplit %v worse than Selinger %v", c.Name, ld.Cost, sel.Cost)
			}
		}
	}
}

// TestConnectedQueriesAgreeWithBushyNoCP: on connected Appendix queries with
// moderate selectivities, the bushy no-product baseline and blitzsplit agree
// whenever blitzsplit's optimal plan happens to contain no products —
// and when they differ, blitzsplit must be strictly better.
func TestConnectedQueriesAgreeWithBushyNoCP(t *testing.T) {
	n := 9
	for _, topo := range joingraph.AllTopologies {
		c := workload.AppendixCase(topo, cost.SortMerge{}, 464, 0.25, n)
		res, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph},
			core.Options{Model: c.Model})
		if err != nil {
			t.Fatal(err)
		}
		noCP, err := baseline.BushyNoCP(c.Cards, c.Graph, c.Model)
		if err != nil {
			t.Fatal(err)
		}
		hasProduct := false
		res.Plan.Walk(func(nd *Plan) {
			if !nd.IsLeaf() && c.Graph.SpanProduct(nd.Left.Set, nd.Right.Set) == 1 {
				hasProduct = true
			}
		})
		switch {
		case !hasProduct && relDiff(res.Cost, noCP.Cost) > 1e-9:
			t.Errorf("%s: product-free optimum %v ≠ no-CP baseline %v", c.Name, res.Cost, noCP.Cost)
		case hasProduct && res.Cost >= noCP.Cost:
			t.Errorf("%s: plan has a product but is not better: %v vs %v", c.Name, res.Cost, noCP.Cost)
		}
	}
}

// TestOptimizedPlanExecutesCorrectly: optimize an Appendix chain query,
// execute the plan on synthesized data, and check the measured cardinality
// against the estimate. Also execute a deliberately different plan shape and
// confirm the result size is identical (plan choice must not change
// semantics).
func TestOptimizedPlanExecutesCorrectly(t *testing.T) {
	n := 6
	cards := joingraph.CardinalityLadder(n, 60, 0.5)
	g := joingraph.Build(joingraph.AppendixChainEdges(n), cards)
	q := core.Query{Cards: cards, Graph: g}
	res, err := core.Optimize(q, core.Options{Model: cost.NewDiskNestedLoops()})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := engine.Synthesize(cards, g, 777)
	if err != nil {
		t.Fatal(err)
	}
	optCount, err := inst.Count(res.Plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A left-deep plan over the same query must return the same rows.
	ld, err := core.Optimize(q, core.Options{Model: cost.Naive{}, LeftDeep: true})
	if err != nil {
		t.Fatal(err)
	}
	ldCount, err := inst.Count(ld.Plan, engine.ExecOptions{Algorithm: engine.SortMergeAlg})
	if err != nil {
		t.Fatal(err)
	}
	if optCount != ldCount {
		t.Errorf("plan shapes disagree on result size: %d vs %d", optCount, ldCount)
	}
	// The Appendix invariant says the estimate is μ = 60; allow generous
	// statistical tolerance on actual data.
	if est := res.Cardinality; est > 0 && math.Abs(float64(optCount)-est) > 0.75*est+10 {
		t.Errorf("actual %d far from estimate %v", optCount, est)
	}
}

// TestStochasticQualityOnPaperWorkload: the §2 observation — stochastic
// searches find decent but rarely optimal plans. We require them within
// 1000× of optimal (they are usually much closer; this guards against the
// move set silently breaking) and never better than the optimum.
func TestStochasticQualityOnPaperWorkload(t *testing.T) {
	c := workload.AppendixCase(joingraph.TopoCyclePlus3, cost.SortMerge{}, 464, 0.5, 10)
	opt, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph},
		core.Options{Model: c.Model})
	if err != nil {
		t.Fatal(err)
	}
	ii, err := baseline.IterativeImprovement(c.Cards, c.Graph, c.Model,
		baseline.StochasticOptions{Seed: 9, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ii.Cost < opt.Cost*(1-1e-9) {
		t.Errorf("II beat the exhaustive optimum: %v < %v", ii.Cost, opt.Cost)
	}
	if ii.Cost > opt.Cost*1000 {
		t.Errorf("II quality collapsed: %v vs optimum %v", ii.Cost, opt.Cost)
	}
	sa, err := baseline.SimulatedAnnealing(c.Cards, c.Graph, c.Model,
		baseline.StochasticOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Cost < opt.Cost*(1-1e-9) {
		t.Errorf("SA beat the exhaustive optimum: %v < %v", sa.Cost, opt.Cost)
	}
	if sa.Cost > opt.Cost*1000 {
		t.Errorf("SA quality collapsed: %v vs optimum %v", sa.Cost, opt.Cost)
	}
}

// TestAppendixInvariantThroughOptimizer: for every topology, the optimizer's
// estimated result cardinality equals μ — the Appendix's designed invariant —
// at n = 15, touching the full 32768-entry table.
func TestAppendixInvariantThroughOptimizer(t *testing.T) {
	for _, topo := range joingraph.AllTopologies {
		c := workload.AppendixCase(topo, cost.Naive{}, 464, 0.5, workload.DefaultN)
		res, err := core.Optimize(core.Query{Cards: c.Cards, Graph: c.Graph}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(res.Cardinality, 464) > 1e-6 {
			t.Errorf("%v: result cardinality %v, want μ=464", topo, res.Cardinality)
		}
	}
}
