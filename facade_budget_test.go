package blitzsplit

// Tests for the facade's resource governance: WithTimeout / WithContext /
// WithMemoryBudget and the WithDeadlineLadder degradation ladder. Rung
// transitions are made deterministic with internal/faultinject hooks; the
// only wall-clock assertions are the acceptance bound on the n=22 chain and
// generous anti-hang ceilings.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blitzsplit/internal/bitset"
	"blitzsplit/internal/faultinject"
)

// ladderChain builds an n-relation chain query with cardinalities large
// enough that plans differ in cost.
func ladderChain(n int) *Query {
	q := NewQuery()
	for i := 0; i < n; i++ {
		q.MustAddRelation(fmt.Sprintf("T%d", i), float64(100+13*i))
	}
	for i := 1; i < n; i++ {
		q.MustJoin(fmt.Sprintf("T%d", i-1), fmt.Sprintf("T%d", i), 0.01)
	}
	return q
}

// countRungs registers a FacadeRung counter for the test's duration.
func countRungs(t *testing.T) *atomic.Int32 {
	t.Helper()
	var n atomic.Int32
	faultinject.Set(faultinject.FacadeRung, func() { n.Add(1) })
	t.Cleanup(faultinject.Reset)
	return &n
}

// requireVerified fails unless the result passes the full correctness audit
// — the ladder's contract is that every rung's plan does.
func requireVerified(t *testing.T, res *Result) {
	t.Helper()
	if res == nil || res.Plan == nil {
		t.Fatal("no result")
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestLadderMemoryBudgetFallsToIDP: a memory budget the 2^n table cannot fit
// skips the exhaustive and threshold rungs (same footprint) and lands on
// IDP, deterministically — no clocks involved.
func TestLadderMemoryBudgetFallsToIDP(t *testing.T) {
	rungs := countRungs(t)
	res, err := ladderChain(10).Optimize(WithMemoryBudget(1024), WithDeadlineLadder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeIDP || !res.Degraded {
		t.Fatalf("mode = %q degraded = %v, want %q degraded", res.Mode, res.Degraded, ModeIDP)
	}
	if got := rungs.Load(); got != 2 { // exhaustive (refused at admission) + IDP
		t.Fatalf("rungs attempted = %d, want 2", got)
	}
	requireVerified(t, res)
	if res.Plan.Set != bitset.Full(10) {
		t.Fatalf("plan covers %v, want all 10 relations", res.Plan.Set)
	}
}

// TestLadderWithoutLadderMemoryBudgetFails: the same budget without
// WithDeadlineLadder is a hard typed failure.
func TestLadderWithoutLadderMemoryBudgetFails(t *testing.T) {
	res, err := ladderChain(10).Optimize(WithMemoryBudget(1024))
	if res != nil {
		t.Fatal("rejected run returned a result")
	}
	var be *BudgetError
	if !errors.Is(err, ErrBudgetExceeded) || !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError wrapping ErrBudgetExceeded", err)
	}
	if be.Budget != 1024 || be.Footprint == 0 {
		t.Fatalf("budget error = %+v", be)
	}
}

// TestLadderExpiredDeadlineFallsToGreedy: a deadline that is already spent
// when every timed rung starts leaves only the greedy floor, which needs no
// budget at all.
func TestLadderExpiredDeadlineFallsToGreedy(t *testing.T) {
	rungs := countRungs(t)
	res, err := ladderChain(12).Optimize(WithTimeout(time.Nanosecond), WithDeadlineLadder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeGreedy || !res.Degraded {
		t.Fatalf("mode = %q degraded = %v, want %q degraded", res.Mode, res.Degraded, ModeGreedy)
	}
	// Exhaustive is attempted (and stopped), threshold and IDP are skipped
	// outright with the deadline gone, greedy closes.
	if got := rungs.Load(); got != 2 {
		t.Fatalf("rungs attempted = %d, want 2", got)
	}
	requireVerified(t, res)
	if !res.Plan.IsLeftDeep() {
		t.Fatal("greedy rung produced a non-left-deep plan")
	}
}

// TestLadderThresholdRung: a fault-injected stall burns the exhaustive
// rung's time slice; the threshold rung (seeded just above the greedy bound)
// then completes and must return the true optimum — ModeThreshold keeps the
// optimality guarantee whenever it finishes.
func TestLadderThresholdRung(t *testing.T) {
	q := ladderChain(12)
	ref, err := ladderChain(12).Optimize()
	if err != nil {
		t.Fatal(err)
	}

	t.Cleanup(faultinject.Reset)
	var once sync.Once
	faultinject.Set(faultinject.CoreFillLayer, func() {
		once.Do(func() {
			// Out-sleep rung 1's slice (half of 2 s), then get out of the
			// way so rung 2's fill runs clean.
			faultinject.Set(faultinject.CoreFillLayer, nil)
			time.Sleep(1500 * time.Millisecond)
		})
	})
	res, err := q.Optimize(WithTimeout(2*time.Second), WithDeadlineLadder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeThreshold || !res.Degraded {
		t.Fatalf("mode = %q degraded = %v, want %q degraded", res.Mode, res.Degraded, ModeThreshold)
	}
	if res.Cost != ref.Cost {
		t.Fatalf("threshold rung cost %v, exhaustive optimum %v", res.Cost, ref.Cost)
	}
	requireVerified(t, res)
}

// TestLadderExplicitCancelAborts: cancellation — unlike a deadline — means
// the caller wants out; the ladder must not degrade past it.
func TestLadderExplicitCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ladderChain(10).Optimize(WithContext(ctx), WithDeadlineLadder())
	if res != nil {
		t.Fatal("cancelled ladder returned a result")
	}
	if !errors.Is(err, ErrBudgetExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrBudgetExceeded ∧ context.Canceled", err)
	}
}

// TestDeadlineLadderAcceptance is the PR's acceptance scenario: a 50 ms
// deadline on an n=22 chain query — far beyond exhaustive reach in that
// budget — must come back promptly with a verified degraded plan.
func TestDeadlineLadderAcceptance(t *testing.T) {
	const deadline = 50 * time.Millisecond
	q := ladderChain(22)
	start := time.Now()
	res, err := q.Optimize(WithTimeout(deadline), WithDeadlineLadder())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// The rung slices sum to under the deadline and each stop reacts within
	// a ~1024-subset stride, so the logical bound is ~2× the deadline; the
	// rest of the margin absorbs CI scheduling and allocation noise.
	if elapsed > 10*deadline {
		t.Fatalf("returned in %v, want ≈%v", elapsed, deadline)
	}
	if !res.Degraded || res.Mode == ModeExhaustive {
		t.Fatalf("mode = %q degraded = %v, want a degraded rung", res.Mode, res.Degraded)
	}
	requireVerified(t, res)
	if res.Plan.Set != bitset.Full(22) {
		t.Fatalf("plan covers %v, want all 22 relations", res.Plan.Set)
	}
}

// TestDeadlineWithoutLadderFailsTyped: the same hopeless deadline without
// the ladder is a prompt, typed failure — never a hang.
func TestDeadlineWithoutLadderFailsTyped(t *testing.T) {
	const deadline = 50 * time.Millisecond
	start := time.Now()
	res, err := ladderChain(22).Optimize(WithTimeout(deadline))
	elapsed := time.Since(start)
	if res != nil {
		t.Fatal("budget-stopped run returned a result")
	}
	if !errors.Is(err, ErrBudgetExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded ∧ DeadlineExceeded", err)
	}
	if elapsed > 10*deadline {
		t.Fatalf("failure took %v, want ≈%v", elapsed, deadline)
	}
}

// TestLadderSmallQueryStaysExhaustive: with a roomy budget the ladder's
// first rung wins and nothing is degraded.
func TestLadderSmallQueryStaysExhaustive(t *testing.T) {
	ref, err := ladderChain(8).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ladderChain(8).Optimize(WithTimeout(time.Minute), WithDeadlineLadder())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeExhaustive || res.Degraded {
		t.Fatalf("mode = %q degraded = %v, want clean exhaustive", res.Mode, res.Degraded)
	}
	if res.Cost != ref.Cost {
		t.Fatalf("ladder cost %v, plain cost %v", res.Cost, ref.Cost)
	}
	requireVerified(t, res)
}

// TestOptionValidation: budget options reject nonsense inputs.
func TestOptionValidation(t *testing.T) {
	q := ladderChain(3)
	if _, err := q.Optimize(WithTimeout(0)); err == nil {
		t.Error("WithTimeout(0) accepted")
	}
	if _, err := q.Optimize(WithTimeout(-time.Second)); err == nil {
		t.Error("negative timeout accepted")
	}
	if _, err := q.Optimize(WithMemoryBudget(0)); err == nil {
		t.Error("WithMemoryBudget(0) accepted")
	}
	if _, err := q.Optimize(WithContext(nil)); err == nil { //nolint:staticcheck // deliberate misuse
		t.Error("nil context accepted")
	}
}

// TestEstimatorRejectsLadder: the fallback rungs need a binary join graph
// for cardinalities, so the estimator entry point refuses the ladder.
func TestEstimatorRejectsLadder(t *testing.T) {
	_, err := OptimizeWithEstimator([]float64{2, 3}, unitEstimator{}, WithDeadlineLadder())
	if err == nil || !strings.Contains(err.Error(), "WithDeadlineLadder") {
		t.Fatalf("err = %v, want a ladder-unsupported error", err)
	}
}

// unitEstimator is the trivial estimator: no predicates, pure products.
type unitEstimator struct{}

func (unitEstimator) StepFactor(bitset.Set) float64 { return 1 }

// TestEstimatorExpressionFallsBackToIndexes is the regression test for the
// Expression crash on name-less results: OptimizeWithEstimator carries no
// relation names, and Expression must render R<i> placeholders instead of
// panicking on the nil name slice.
func TestEstimatorExpressionFallsBackToIndexes(t *testing.T) {
	res, err := OptimizeWithEstimator([]float64{2, 3, 4}, unitEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	expr := res.Expression()
	for _, want := range []string{"R0", "R1", "R2"} {
		if !strings.Contains(expr, want) {
			t.Fatalf("Expression() = %q, missing %s", expr, want)
		}
	}
}

// TestEstimatorHonorsContext: the estimator entry point shares the budget
// plumbing.
func TestEstimatorHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cards := make([]float64, 14)
	for i := range cards {
		cards[i] = float64(10 + i)
	}
	_, err := OptimizeWithEstimator(cards, unitEstimator{}, WithContext(ctx))
	if !errors.Is(err, ErrBudgetExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrBudgetExceeded ∧ context.Canceled", err)
	}
}
