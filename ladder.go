package blitzsplit

import (
	"context"
	"errors"
	"math"
	"time"

	"blitzsplit/internal/baseline"
	"blitzsplit/internal/core"
	"blitzsplit/internal/faultinject"
	"blitzsplit/internal/hybrid"
)

// rungSlice gives one ladder rung half the context's remaining deadline, so
// lower rungs always retain budget of their own.
func rungSlice(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		return nil, func() {}
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, time.Now().Add(remaining/2))
}

// ladderK picks the IDP block size for the ladder's hybrid rung: exact for
// tiny queries, otherwise small enough that one DP round — the cancellation
// granularity of hybrid.IDP — stays in the low milliseconds even at n ≈ 30.
func ladderK(n int) int {
	if n < 6 {
		return n
	}
	return 6
}

// thresholdAbove returns a plan-cost threshold strictly above the given
// upper bound, so a plan costing exactly the bound still survives the
// threshold pass's strict comparisons.
func thresholdAbove(bound float64) float64 {
	return bound*(1+1e-9) + math.SmallestNonzeroFloat64
}

// runLadder is the degradation ladder: exhaustive blitzsplit, then a
// threshold-pruned pass seeded by a greedy upper bound, then bounded IDP
// with randomized polish, then the greedy plan itself. Rungs are attempted
// in order until one finishes inside the budget; the greedy floor always
// does. Explicit cancellation aborts between rungs instead of degrading.
// Every rung draws its scratch tables from the engine's arena, so a rung cut
// down mid-run returns its table to the pool instead of leaking it.
func (e *Engine) runLadder(cq core.Query, cfg config, ctx context.Context) (*outcome, error) {
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}

	// Rung 1: exhaustive, within half the remaining budget.
	faultinject.Inject(faultinject.FacadeRung)
	opts := cfg.opts
	rctx, cancel := rungSlice(ctx)
	opts.Ctx = rctx
	res, err := core.Optimize(cq, opts)
	cancel()
	if err == nil {
		return &outcome{plan: res.Plan, cost: res.Cost, card: res.Cardinality, counters: res.Counters, mode: ModeExhaustive}, nil
	}
	if !errors.Is(err, core.ErrBudgetExceeded) {
		return nil, err // ErrNoPlan, validation, … — not a budget problem
	}
	if errors.Is(ctxErr(), context.Canceled) {
		return nil, err // the caller cancelled; they want out, not a fallback
	}
	var be *core.BudgetError
	memoryBound := errors.As(err, &be) && be.Phase == core.PhaseAdmission

	m := cfg.model()
	// The greedy bound seeds the threshold rung and is the ladder's floor.
	greedy, gerr := baseline.GreedyLeftDeep(cq.Cards, cq.Graph, m)
	if gerr != nil {
		return nil, gerr
	}

	// Rung 2: threshold-pruned exhaustive. The greedy cost bounds the
	// optimum from above, so a threshold just beyond it keeps the optimum
	// reachable while the §6.4 pruning skips nearly all κ″ work. Pointless
	// when the table itself was refused (same footprint) or time is up.
	if !memoryBound && ctxErr() == nil {
		faultinject.Inject(faultinject.FacadeRung)
		topts := cfg.opts
		rctx, cancel = rungSlice(ctx)
		topts.Ctx = rctx
		topts.CostThreshold = thresholdAbove(greedy.Cost)
		res, err = core.Optimize(cq, topts)
		cancel()
		if err == nil {
			return &outcome{plan: res.Plan, cost: res.Cost, card: res.Cardinality, counters: res.Counters, mode: ModeThreshold}, nil
		}
		if !errors.Is(err, core.ErrBudgetExceeded) {
			return nil, err
		}
		if errors.Is(ctxErr(), context.Canceled) {
			return nil, err
		}
	}

	// Rung 3: bounded IDP plus polish — polynomial time, 2^K-sized tables.
	if ctxErr() == nil {
		faultinject.Inject(faultinject.FacadeRung)
		rctx, cancel = rungSlice(ctx)
		hres, herr := hybrid.ChainedLocal(cq.Cards, cq.Graph, m, hybrid.IDPOptions{
			K:          ladderK(len(cq.Cards)),
			Stochastic: baseline.StochasticOptions{Seed: 1},
			Ctx:        rctx,
			Arena:      e.arena,
			Enumerator: cfg.opts.Enumerator,
		})
		cancel()
		if herr == nil {
			return &outcome{plan: hres.Plan, cost: hres.Cost, card: hres.Plan.Card, mode: ModeIDP}, nil
		}
		if !errors.Is(herr, context.Canceled) && !errors.Is(herr, context.DeadlineExceeded) {
			return nil, herr
		}
		if errors.Is(ctxErr(), context.Canceled) {
			return nil, err
		}
	}

	// Rung 4: the greedy floor — O(n²), already computed, cannot fail.
	faultinject.Inject(faultinject.FacadeRung)
	return &outcome{plan: greedy.Plan, cost: greedy.Cost, card: greedy.Plan.Card, mode: ModeGreedy}, nil
}
