package blitzsplit

import (
	"blitzsplit/internal/check"
	"blitzsplit/internal/core"
	"blitzsplit/internal/cost"
	"blitzsplit/internal/plan"
)

// Result is the outcome of Optimize.
type Result struct {
	// Plan is the optimal join tree.
	Plan *Plan
	// Cost is the plan's estimated cost under the chosen model.
	Cost float64
	// Cardinality is the estimated result size.
	Cardinality float64
	// Counters holds the §3.3 instrumentation for the run. For a cached
	// result they describe the cold run that populated the cache entry.
	Counters Counters
	// Mode records which optimizer produced the plan: ModeExhaustive for
	// the full blitzsplit search, or the degradation-ladder rung
	// (ModeThreshold, ModeIDP, ModeGreedy) that won under WithDeadlineLadder.
	Mode string
	// Degraded reports that a resource budget forced the plan off the
	// exhaustive rung. A degraded plan is still well-formed and
	// cost-consistent (it passes Verify), but only ModeThreshold retains
	// the optimality guarantee.
	Degraded bool
	// Cached reports that the plan was served from the Engine's plan cache —
	// rewritten from canonical to this query's relation numbering — rather
	// than optimized fresh. Always false on the default engine, whose cache
	// is disabled.
	Cached bool

	names []string
	query core.Query
	model CostModel
}

// outcome is the internal optimizer product before facade assembly: the plan
// in whatever relation numbering the producing stage used, plus the scalars
// that ride with it. The engine relabels cached/canonical outcomes back to
// caller numbering before finish turns them into a Result.
type outcome struct {
	plan     *plan.Node
	cost     float64
	card     float64
	counters Counters
	mode     string
	cached   bool
}

// finish assembles the facade Result for an outcome produced by any rung or
// by the cache.
func (c config) finish(o *outcome, names []string, cq core.Query) *Result {
	if c.attachAlg {
		o.plan.AttachAlgorithms(c.model())
	}
	return &Result{
		Plan:        o.plan,
		Cost:        o.cost,
		Cardinality: o.card,
		Counters:    o.counters,
		Mode:        o.mode,
		Degraded:    o.mode != ModeExhaustive,
		Cached:      o.cached,
		names:       names,
		query:       cq,
		model:       c.opts.Model,
	}
}

// Expression renders the plan as a parenthesized join expression using the
// query's relation names.
func (r *Result) Expression() string { return r.Plan.Expression(r.names) }

// Verify audits the result with the internal correctness harness: the plan
// must be structurally well-formed (each base relation in exactly one leaf,
// children partitioning each node's relation set), and every cardinality and
// cost in it must match a from-scratch recomputation against the original
// query and cost model. It returns nil for every result the library
// produces — cache hits included; a non-nil error means a bug (or a Result
// mutated after the fact). See DESIGN.md's "Correctness harness" section for
// the full invariant suite this draws from.
func (r *Result) Verify() error {
	if err := check.WellFormed(len(r.query.Cards), r.Plan); err != nil {
		return err
	}
	m := r.model
	if m == nil {
		m = cost.Naive{}
	}
	return check.CostConsistent(r.query, m, &core.Result{
		Plan:        r.Plan,
		Cost:        r.Cost,
		Cardinality: r.Cardinality,
		Counters:    r.Counters,
	})
}
