package blitzsplit

// Tests for the facade's extension surface: custom estimators (hypergraphs,
// schemas) and the large-n hybrid path.

import (
	"math"
	"testing"

	"blitzsplit/internal/bitset"
	"blitzsplit/internal/joingraph"
)

func TestOptimizeWithHypergraph(t *testing.T) {
	h := NewHypergraph(3)
	if err := h.AddEdge(bitset.Of(0, 1, 2), 1e-4); err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWithEstimator([]float64{50, 20, 80}, h)
	if err != nil {
		t.Fatal(err)
	}
	if want := 50 * 20 * 80 * 1e-4; relDiff(res.Cardinality, want) > 1e-9 {
		t.Errorf("cardinality = %v, want %v", res.Cardinality, want)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := OptimizeWithEstimator([]float64{1, 2}, nil); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := OptimizeWithEstimator([]float64{1, 2}, h, WithCostModel("bogus")); err == nil {
		t.Error("bad option accepted")
	}
}

func TestOptimizeWithSchema(t *testing.T) {
	s := NewSchema(3)
	s.MustAddColumn(0, "k", 100)
	s.MustAddColumn(1, "k", 100)
	s.MustAddColumn(2, "k", 100)
	s.MustEquate(0, "k", 1, "k")
	s.MustEquate(1, "k", 2, "k")
	cards := []float64{1000, 2000, 3000}
	res, err := OptimizeWithEstimator(cards, s, WithCostModel("dnl"), WithAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	// One shared key: |result| = ∏cards / 100².
	if want := 1000.0 * 2000 * 3000 / 1e4; relDiff(res.Cardinality, want) > 1e-9 {
		t.Errorf("cardinality = %v, want %v", res.Cardinality, want)
	}
	res.Plan.Walk(func(n *Plan) {
		if !n.IsLeaf() && n.Algorithm == "" {
			t.Error("WithAlgorithms did not annotate")
		}
	})
}

func TestOptimizeLargeMatchesExactWhenBlockCovers(t *testing.T) {
	q := NewQuery()
	q.MustAddRelation("a", 100)
	q.MustAddRelation("b", 400)
	q.MustAddRelation("c", 50)
	q.MustAddRelation("d", 900)
	q.MustJoin("a", "b", 0.01)
	q.MustJoin("b", "c", 0.02)
	q.MustJoin("c", "d", 0.005)
	exact, err := q.Optimize(WithCostModel("dnl"))
	if err != nil {
		t.Fatal(err)
	}
	large, err := q.OptimizeLarge(10, WithCostModel("dnl"))
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(large.Cost, exact.Cost) > 1e-9 {
		t.Errorf("OptimizeLarge(k≥n) %v ≠ exact %v", large.Cost, exact.Cost)
	}
	if large.Expression() == "" {
		t.Error("expression empty")
	}
}

func TestOptimizeLargeTwentyRelations(t *testing.T) {
	n := 20
	cards := joingraph.CardinalityLadder(n, 200, 0.5)
	g := joingraph.Build(joingraph.AppendixChainEdges(n), cards)
	q := NewQuery()
	for i := 0; i < n; i++ {
		q.MustAddRelation(relName(i), cards[i])
	}
	for _, e := range g.Edges() {
		q.MustJoin(relName(e.A), relName(e.B), e.Selectivity)
	}
	res, err := q.OptimizeLarge(6, WithCostModel("sortmerge"))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Plan.Relations() != n {
		t.Errorf("plan covers %d relations", res.Plan.Relations())
	}
	if math.IsInf(res.Cost, 0) || res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
	if _, err := NewQuery().OptimizeLarge(5); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := q.OptimizeLarge(5, WithCostModel("bogus")); err == nil {
		t.Error("bad option accepted")
	}
}

func relName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}
