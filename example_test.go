package blitzsplit_test

import (
	"fmt"

	"blitzsplit"
)

// The paper's Table 1: optimizing the pure Cartesian product A × B × C × D.
func Example() {
	q := blitzsplit.NewQuery()
	q.MustAddRelation("A", 10)
	q.MustAddRelation("B", 20)
	q.MustAddRelation("C", 30)
	q.MustAddRelation("D", 40)
	res, err := q.Optimize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f, cardinality %.0f\n", res.Cost, res.Cardinality)
	// Output:
	// cost 241000, cardinality 240000
}

// A join query with predicates, optimized under the disk-nested-loops model.
func ExampleQuery_Optimize() {
	q := blitzsplit.NewQuery()
	q.MustAddRelation("customer", 150000)
	q.MustAddRelation("orders", 1500000)
	q.MustJoin("customer", "orders", 1.0/150000)
	res, err := q.Optimize(blitzsplit.WithCostModel("dnl"))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Expression())
	fmt.Printf("estimated rows: %.0f\n", res.Cardinality)
	// Output:
	// (customer ⨝ orders)
	// estimated rows: 1500000
}

// Plan-cost thresholds (§6.4): a threshold below the optimum forces
// re-optimization passes but lands on the same optimum.
func ExampleWithCostThreshold() {
	q := blitzsplit.NewQuery()
	q.MustAddRelation("a", 100)
	q.MustAddRelation("b", 200)
	q.MustJoin("a", "b", 0.01)
	res, err := q.Optimize(blitzsplit.WithCostThreshold(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f after %d passes\n", res.Cost, res.Counters.Passes)
	// Output:
	// cost 200 after 2 passes
}

// A ternary predicate via the hypergraph estimator.
func ExampleOptimizeWithEstimator() {
	h := blitzsplit.NewHypergraph(3)
	if err := h.AddEdge(blitzsplit.Rels(0, 1, 2), 0.001); err != nil {
		panic(err)
	}
	res, err := blitzsplit.OptimizeWithEstimator([]float64{100, 200, 50}, h)
	if err != nil {
		panic(err)
	}
	fmt.Printf("estimated rows: %.0f\n", res.Cardinality)
	// Output:
	// estimated rows: 1000
}
