package blitzsplit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// disconnectedQuery is two joined pairs with no predicate between them: a
// disconnected join graph, ineligible for the CCP enumerator.
func disconnectedQuery() *Query {
	q := NewQuery()
	q.MustAddRelation("a", 100)
	q.MustAddRelation("b", 200)
	q.MustAddRelation("c", 300)
	q.MustAddRelation("d", 400)
	q.MustJoin("a", "b", 0.01)
	q.MustJoin("c", "d", 0.02)
	return q
}

// WithEnumerator must accept exactly the three named strategies.
func TestWithEnumeratorValidates(t *testing.T) {
	for _, e := range []Enumerator{EnumeratorBlitz, EnumeratorCCP, EnumeratorAuto} {
		if _, err := newConfig([]Option{WithEnumerator(e)}); err != nil {
			t.Errorf("WithEnumerator(%v): %v", e, err)
		}
	}
	if _, err := newConfig([]Option{WithEnumerator(Enumerator(99))}); err == nil {
		t.Error("WithEnumerator(99) must be rejected")
	}
}

// The engine resolves Auto to a concrete strategy before the cache key is
// built, so on a connected query Auto and an explicit CCP request share one
// cache entry, while the blitz default keys separately (the two strategies
// search different plan spaces and may cache different optima).
func TestEngineEnumeratorKeySeparation(t *testing.T) {
	cards, edges := starQuery(7)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(7))

	ccpCold, err := eng.Optimize(nil, q, WithEnumerator(EnumeratorCCP))
	if err != nil {
		t.Fatal(err)
	}
	if ccpCold.Cached {
		t.Fatal("first ccp submission cannot hit")
	}
	auto, err := eng.Optimize(nil, q, WithEnumerator(EnumeratorAuto))
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Cached {
		t.Fatal("Auto on a connected query must resolve to CCP and hit its entry")
	}
	if math.Float64bits(auto.Cost) != math.Float64bits(ccpCold.Cost) || auto.Counters != ccpCold.Counters {
		t.Fatal("Auto hit is not bit-identical to the ccp cold run")
	}
	blitz, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if blitz.Cached {
		t.Fatal("the blitz default must not hit the ccp entry")
	}
	hit, err := eng.Optimize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("the blitz resubmission must hit its own entry")
	}
}

// Warm CCP entries serve permuted resubmissions bit-identically, exactly
// like the blitz path — the cache-soundness invariant under the new key.
func TestEngineCCPHitBitIdentical(t *testing.T) {
	const n = 8
	cards, edges := starQuery(n)
	eng := New(EngineOptions{})
	cold, err := eng.Optimize(nil, permutedQuery(t, cards, edges, identityPerm(n)), WithEnumerator(EnumeratorCCP))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		q := permutedQuery(t, cards, edges, rng.Perm(n))
		res, err := eng.Optimize(nil, q, WithEnumerator(EnumeratorCCP))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("trial %d: permuted ccp resubmission missed", trial)
		}
		if math.Float64bits(res.Cost) != math.Float64bits(cold.Cost) || res.Counters != cold.Counters {
			t.Fatalf("trial %d: ccp hit diverged from cold run", trial)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// An explicit CCP request on an ineligible query errors identically cold and
// warm — resolution happens before the cache lookup, so a hit can never mask
// the eligibility error — while Auto falls back to a result bit-identical to
// the blitz default.
func TestEngineEnumeratorUnsupported(t *testing.T) {
	eng := New(EngineOptions{})
	for i := 0; i < 2; i++ {
		if _, err := eng.Optimize(nil, disconnectedQuery(), WithEnumerator(EnumeratorCCP)); !errors.Is(err, ErrEnumeratorUnsupported) {
			t.Fatalf("round %d: error = %v, want ErrEnumeratorUnsupported", i, err)
		}
	}
	// Left-deep excludes CCP even on a connected graph.
	cards, edges := starQuery(6)
	q := permutedQuery(t, cards, edges, identityPerm(6))
	if _, err := eng.Optimize(nil, q, WithLeftDeep(), WithEnumerator(EnumeratorCCP)); !errors.Is(err, ErrEnumeratorUnsupported) {
		t.Fatalf("left-deep ccp: error = %v, want ErrEnumeratorUnsupported", err)
	}
	auto, err := eng.Optimize(nil, disconnectedQuery(), WithEnumerator(EnumeratorAuto))
	if err != nil {
		t.Fatal(err)
	}
	blitz, err := eng.Optimize(nil, disconnectedQuery())
	if err != nil {
		t.Fatal(err)
	}
	// The second disconnected submission hits the entry the first stored:
	// Auto resolved to blitz, so the two share a key.
	if !blitz.Cached {
		t.Fatal("blitz must hit the entry Auto-resolved-to-blitz stored")
	}
	if math.Float64bits(auto.Cost) != math.Float64bits(blitz.Cost) || auto.Counters != blitz.Counters {
		t.Fatal("Auto fallback diverged from the blitz default")
	}
}

// Topology-aware selection must be free on the serve hot path: with
// connectivity memoized in the canonical fingerprint, an Auto hit stays
// within the same O(1) allocation budget as the default path's hits.
func TestEngineAutoEnumeratorHitAllocs(t *testing.T) {
	const n = 12
	cards, edges := starQuery(n)
	eng := New(EngineOptions{})
	q := permutedQuery(t, cards, edges, identityPerm(n))
	opts := []Option{WithEnumerator(EnumeratorAuto)}
	if _, err := eng.Optimize(nil, q, opts...); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		res, err := eng.Optimize(nil, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatal("must measure the hit path")
		}
	})
	limit := 10.0
	if raceEnabled {
		// See TestEngineCacheHitAllocs: -race disables open-coded defers, so
		// the Optimize-boundary recover defer allocates there only.
		limit++
	}
	if allocs >= limit {
		t.Errorf("auto-enumerator cache hit allocated %v times per op, want < %v", allocs, limit)
	}
}

// The ladder's budget decisions are enumerator-independent: a memory budget
// the 2^n table cannot fit skips the exhaustive and threshold rungs and lands
// on IDP after the same two rung attempts whether blitz, CCP, or Auto is
// selected, and the IDP rung returns a plan of the same cost.
func TestLadderMemoryDegradationIdenticalAcrossEnumerators(t *testing.T) {
	type outcome struct {
		mode  string
		rungs int32
	}
	attempt := func(extra ...Option) (outcome, float64) {
		rungs := countRungs(t)
		opts := append([]Option{WithMemoryBudget(1024), WithDeadlineLadder()}, extra...)
		res, err := ladderChain(10).Optimize(opts...)
		if err != nil {
			t.Fatal(err)
		}
		requireVerified(t, res)
		if !res.Degraded {
			t.Fatalf("mode %q is not degraded", res.Mode)
		}
		return outcome{res.Mode, rungs.Load()}, res.Cost
	}

	base, baseCost := attempt()
	if base != (outcome{ModeIDP, 2}) {
		t.Fatalf("default ladder degraded as %+v, want IDP after 2 rungs", base)
	}
	for _, e := range []Enumerator{EnumeratorCCP, EnumeratorAuto} {
		got, cost := attempt(WithEnumerator(e))
		if got != base {
			t.Fatalf("enumerator %v degraded as %+v, default %+v", e, got, base)
		}
		if diff := math.Abs(cost-baseCost) / baseCost; diff > 1e-9 {
			t.Fatalf("enumerator %v IDP rung cost %v, default %v", e, cost, baseCost)
		}
	}
}

// An expired deadline degrades to the greedy floor on the identical rung
// schedule under every enumerator, and the greedy plan — which never consults
// the enumerator — is bit-identical across them.
func TestLadderDeadlineDegradationIdenticalAcrossEnumerators(t *testing.T) {
	attempt := func(extra ...Option) (string, int32, uint64) {
		rungs := countRungs(t)
		opts := append([]Option{WithTimeout(time.Nanosecond), WithDeadlineLadder()}, extra...)
		res, err := ladderChain(12).Optimize(opts...)
		if err != nil {
			t.Fatal(err)
		}
		requireVerified(t, res)
		return res.Mode, rungs.Load(), math.Float64bits(res.Cost)
	}

	mode, rungs, cost := attempt()
	if mode != ModeGreedy || rungs != 2 {
		t.Fatalf("default ladder: mode %q after %d rungs, want greedy after 2", mode, rungs)
	}
	for _, e := range []Enumerator{EnumeratorCCP, EnumeratorAuto} {
		m, r, c := attempt(WithEnumerator(e))
		if m != mode || r != rungs || c != cost {
			t.Fatalf("enumerator %v: mode %q rungs %d costbits %x; default %q %d %x",
				e, m, r, c, mode, rungs, cost)
		}
	}
}

// The facade ParseEnumerator mirrors the CLI flag grammar.
func TestParseEnumeratorFacade(t *testing.T) {
	for name, want := range map[string]Enumerator{
		"": EnumeratorBlitz, "blitz": EnumeratorBlitz, "ccp": EnumeratorCCP, "auto": EnumeratorAuto,
	} {
		got, err := ParseEnumerator(name)
		if err != nil || got != want {
			t.Errorf("ParseEnumerator(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseEnumerator("dpccp"); err == nil {
		t.Error("ParseEnumerator must reject unknown names")
	}
}
