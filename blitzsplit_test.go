package blitzsplit

import (
	"math"
	"strings"
	"testing"
)

// table1 builds the paper's worked example through the public API.
func table1(t *testing.T) *Query {
	t.Helper()
	q := NewQuery()
	q.MustAddRelation("A", 10)
	q.MustAddRelation("B", 20)
	q.MustAddRelation("C", 30)
	q.MustAddRelation("D", 40)
	return q
}

func TestQuickstartFlow(t *testing.T) {
	q := table1(t)
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 241000 {
		t.Errorf("cost = %v, want 241000", res.Cost)
	}
	if res.Cardinality != 240000 {
		t.Errorf("cardinality = %v", res.Cardinality)
	}
	expr := res.Expression()
	if expr != "((A ⨝ D) ⨝ (B ⨝ C))" && expr != "((B ⨝ C) ⨝ (A ⨝ D))" {
		t.Errorf("expression = %q", expr)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
	if res.Counters.Passes != 1 {
		t.Errorf("passes = %d", res.Counters.Passes)
	}
}

func TestQueryValidation(t *testing.T) {
	q := NewQuery()
	if err := q.AddRelation("", 5); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := q.Optimize(); err == nil {
		t.Error("empty query optimized")
	}
	q.MustAddRelation("a", 10)
	if err := q.AddRelation("a", 20); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := q.Join("a", "missing", 0.5); err == nil {
		t.Error("join to unknown relation accepted")
	}
	if err := q.Join("missing", "a", 0.5); err == nil {
		t.Error("join from unknown relation accepted")
	}
	q.MustAddRelation("b", 20)
	if err := q.Join("a", "b", 2.0); err != nil {
		t.Error("selectivity validation should be deferred to Optimize")
	}
	if _, err := q.Optimize(); err == nil {
		t.Error("out-of-range selectivity not caught at build time")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	q := NewQuery()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustAddRelation did not panic")
			}
		}()
		q.MustAddRelation("", 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustJoin did not panic")
			}
		}()
		q.MustJoin("x", "y", 0.5)
	}()
}

func TestAccessors(t *testing.T) {
	q := table1(t)
	if q.NumRelations() != 4 {
		t.Errorf("NumRelations = %d", q.NumRelations())
	}
	names := q.RelationNames()
	if len(names) != 4 || names[0] != "A" || names[3] != "D" {
		t.Errorf("names = %v", names)
	}
}

func TestJoinsAffectOptimization(t *testing.T) {
	q := NewQuery()
	q.MustAddRelation("facts", 1e6)
	q.MustAddRelation("dim1", 100)
	q.MustAddRelation("dim2", 50)
	q.MustJoin("facts", "dim1", 1e-2)
	q.MustJoin("facts", "dim2", 2e-2)
	res, err := q.Optimize(WithCostModel("dnl"))
	if err != nil {
		t.Fatal(err)
	}
	// Result cardinality: 1e6·100·50·1e-2·2e-2 = 1e6.
	if math.Abs(res.Cardinality-1e6)/1e6 > 1e-9 {
		t.Errorf("cardinality = %v", res.Cardinality)
	}
}

func TestOptions(t *testing.T) {
	q := table1(t)
	// Unknown model name errors.
	if _, err := q.Optimize(WithCostModel("bogus")); err == nil {
		t.Error("bogus model accepted")
	}
	if _, err := q.Optimize(WithModel(nil)); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := q.Optimize(WithCostThreshold(-1)); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := q.Optimize(WithOverflowLimit(0)); err == nil {
		t.Error("zero overflow limit accepted")
	}
	// Left-deep returns a vine.
	res, err := q.Optimize(WithLeftDeep())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsLeftDeep() {
		t.Error("left-deep option ignored")
	}
	// Thresholded run reaches the same optimum.
	th, err := q.Optimize(WithCostThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if th.Cost != 241000 {
		t.Errorf("thresholded cost = %v", th.Cost)
	}
	if th.Counters.Passes < 2 {
		t.Errorf("threshold 1 should force re-optimization, passes = %d", th.Counters.Passes)
	}
}

func TestWithAlgorithms(t *testing.T) {
	q := table1(t)
	res, err := q.Optimize(WithCostModel("min(sortmerge,dnl)"), WithAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	res.Plan.Walk(func(n *Plan) {
		if !n.IsLeaf() {
			joins++
			if n.Algorithm != "sortmerge" && n.Algorithm != "dnl" {
				t.Errorf("join %v algorithm %q", n.Set, n.Algorithm)
			}
		}
	})
	if joins != 3 {
		t.Errorf("joins = %d", joins)
	}
	// Default model with WithAlgorithms labels joins "naive".
	res2, err := q.Optimize(WithAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	res2.Plan.Walk(func(n *Plan) {
		if !n.IsLeaf() && n.Algorithm != "naive" {
			t.Errorf("algorithm = %q", n.Algorithm)
		}
	})
}

func TestSynthesizeAndExecute(t *testing.T) {
	q := NewQuery()
	q.MustAddRelation("l", 300)
	q.MustAddRelation("r", 200)
	q.MustJoin("l", "r", 0.01)
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	db, err := q.Synthesize(42)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := Execute(db, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate 300·200·0.01 = 600; generous statistical tolerance.
	if est := res.Cardinality; math.Abs(float64(actual)-est)/est > 0.3 {
		t.Errorf("actual %d vs estimate %v", actual, est)
	}
	if _, err := NewQuery().Synthesize(1); err == nil {
		t.Error("empty query synthesized")
	}
}

func TestErrNoPlanSurfaced(t *testing.T) {
	q := NewQuery()
	q.MustAddRelation("x", 1e30)
	q.MustAddRelation("y", 1e30)
	if _, err := q.Optimize(); err != ErrNoPlan {
		t.Errorf("err = %v, want ErrNoPlan", err)
	}
	// Raising the overflow limit fixes it.
	if _, err := q.Optimize(WithOverflowLimit(math.MaxFloat64)); err != nil {
		t.Errorf("unexpected error with raised limit: %v", err)
	}
}

func TestPlanRenderViaFacade(t *testing.T) {
	q := table1(t)
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan.String(), "scan R0") {
		t.Errorf("render = %s", res.Plan)
	}
}
