package blitzsplit

import (
	"context"
	"errors"
	"time"

	"blitzsplit/internal/core"
	"blitzsplit/internal/cost"
)

// config collects optimization options.
type config struct {
	opts      core.Options
	attachAlg bool
	ctx       context.Context
	timeout   time.Duration
	ladder    bool
}

// newConfig folds a caller's options into a config.
func newConfig(options []Option) (config, error) {
	var cfg config
	for _, o := range options {
		if err := o(&cfg); err != nil {
			return config{}, err
		}
	}
	return cfg, nil
}

// model returns the configured cost model, defaulting like core does.
func (c config) model() CostModel {
	if c.opts.Model == nil {
		return cost.Naive{}
	}
	return c.opts.Model
}

// budgetContext derives the run's governing context from WithContext and
// WithTimeout; nil when neither was given.
func (c config) budgetContext() (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return c.ctx, func() {}
	}
	base := c.ctx
	if base == nil {
		base = context.Background()
	}
	return context.WithTimeout(base, c.timeout)
}

// Option configures Optimize.
type Option func(*config) error

// WithCostModel selects the cost model by name: "naive" (κ0), "sortmerge"
// (κsm), "dnl" (κdnl), "hash", or a composite like "min(sortmerge,dnl)"
// modelling the availability of multiple join algorithms (§6.5). The default
// is "naive".
func WithCostModel(name string) Option {
	return func(c *config) error {
		m, err := cost.ByName(name)
		if err != nil {
			return err
		}
		c.opts.Model = m
		return nil
	}
}

// WithModel supplies a CostModel value directly.
func WithModel(m CostModel) Option {
	return func(c *config) error {
		if m == nil {
			return errors.New("blitzsplit: nil cost model")
		}
		c.opts.Model = m
		return nil
	}
}

// WithLeftDeep restricts the search to left-deep vines (the comparison space
// of §6.2). Cartesian products remain allowed.
func WithLeftDeep() Option {
	return func(c *config) error {
		c.opts.LeftDeep = true
		return nil
	}
}

// WithEnumerator selects the exact fill strategy: EnumeratorBlitz (the
// paper's 3^n split scan, the default), EnumeratorCCP (the DPccp-style
// connected-complement-pair restriction — exact over the
// Cartesian-product-free space, requires a connected join graph), or
// EnumeratorAuto (CCP when the query is eligible, blitz otherwise). See the
// Enumerator constants for the search-space caveat Auto accepts. The engine
// resolves Auto per query before its cache lookup, so plans optimized under
// different strategies never alias in the plan cache.
func WithEnumerator(e Enumerator) Option {
	return func(c *config) error {
		switch e {
		case EnumeratorBlitz, EnumeratorCCP, EnumeratorAuto:
			c.opts.Enumerator = e
			return nil
		}
		return errors.New("blitzsplit: invalid enumerator")
	}
}

// WithParallelism fills the DP table with w parallel workers. The table's
// rank layers (subsets of equal popcount) depend only on lower layers, so
// each layer is partitioned across workers; plans, costs and counters are
// bit-identical to the default serial fill. 0 restores the serial fill;
// values beyond runtime.GOMAXPROCS add no speedup.
func WithParallelism(w int) Option {
	return func(c *config) error {
		if w < 0 {
			return errors.New("blitzsplit: parallelism must be ≥ 0")
		}
		c.opts.Parallelism = w
		return nil
	}
}

// WithCostThreshold enables §6.4 plan-cost-threshold pruning: plans costing
// more than threshold are summarily rejected, and optimization retries with
// a 1000× larger threshold whenever a pass finds no plan. Queries with cheap
// plans optimize faster; expensive ones pay for extra passes.
func WithCostThreshold(threshold float64) Option {
	return func(c *config) error {
		if threshold <= 0 {
			return errors.New("blitzsplit: cost threshold must be positive")
		}
		c.opts.CostThreshold = threshold
		return nil
	}
}

// WithOverflowLimit overrides the cost overflow limit (default: the
// single-precision float maximum, mirroring the paper's float32 cost
// representation, §6.3).
func WithOverflowLimit(limit float64) Option {
	return func(c *config) error {
		if limit <= 0 {
			return errors.New("blitzsplit: overflow limit must be positive")
		}
		c.opts.OverflowLimit = limit
		return nil
	}
}

// WithAlgorithms attaches the winning physical join algorithm to every join
// node after optimization (meaningful with a min(...) composite model; §6.5).
func WithAlgorithms() Option {
	return func(c *config) error {
		c.attachAlg = true
		return nil
	}
}

// WithContext bounds the optimization by the context: cancellation or
// deadline stops the run cooperatively (within a few thousand split loops)
// and Optimize returns a *BudgetError wrapping ErrBudgetExceeded and the
// context's error — unless WithDeadlineLadder is also set, in which case a
// deadline degrades to cheaper optimizers instead of failing. When calling
// Engine.Optimize, this option takes precedence over the method's context
// argument.
func WithContext(ctx context.Context) Option {
	return func(c *config) error {
		if ctx == nil {
			return errors.New("blitzsplit: nil context")
		}
		c.ctx = ctx
		return nil
	}
}

// WithTimeout bounds the optimization to d of wall time; it is WithContext
// with a deadline d from the moment Optimize is called. Combine with
// WithDeadlineLadder to get a (possibly degraded) plan instead of an error
// when the budget runs out.
func WithTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return errors.New("blitzsplit: timeout must be positive")
		}
		c.timeout = d
		return nil
	}
}

// WithMemoryBudget rejects the optimization up front — before anything is
// allocated — when the DP table's exact footprint (four 2^n-element columns;
// see core.TableFootprint) exceeds budget bytes. Without WithDeadlineLadder
// the rejection surfaces as a *BudgetError; with it, the ladder skips
// straight to the bounded-memory rungs (IDP, then greedy). A plan-cache hit
// is exempt: serving a cached plan allocates no table at all.
func WithMemoryBudget(budget uint64) Option {
	return func(c *config) error {
		if budget == 0 {
			return errors.New("blitzsplit: memory budget must be positive")
		}
		c.opts.MemoryBudget = budget
		return nil
	}
}

// WithDeadlineLadder makes Optimize degrade instead of fail when a budget
// (WithTimeout, WithContext deadline, WithMemoryBudget) runs out, walking a
// ladder of ever-cheaper optimizers and recording the winning rung in
// Result.Mode:
//
//	exhaustive → threshold-pruned exhaustive → bounded IDP + polish → greedy
//
// With a deadline, each attempted rung gets half the remaining budget so
// lower rungs always retain time to run; the greedy floor is O(n²) and needs
// effectively none. Every rung's plan passes Result.Verify. Explicit
// cancellation (context.Canceled, as opposed to a deadline) aborts the
// ladder and returns the budget error: a caller that cancelled wants no
// answer at all.
func WithDeadlineLadder() Option {
	return func(c *config) error {
		c.ladder = true
		return nil
	}
}
